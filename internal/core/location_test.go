package core

import (
	"sync"
	"testing"
	"time"

	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

var locData = struct {
	once      sync.Once
	rec       *LocationRecorder
	predictor *Predictor
	err       error
}{}

// locSetup runs one failure-dense window with both the location recorder
// (for frames) and the incident recorder (to train a predictor).
func locSetup(t *testing.T) (*LocationRecorder, *Predictor) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-backed location test skipped in -short mode")
	}
	locData.once.Do(func() {
		// Frames every hour (12 ticks at 300 s).
		locData.rec = NewLocationRecorder(simStep, 12)
		windowTicks := int((FeatureSpan+6*time.Hour)/simStep) + 1
		win := sim.NewIncidentWindowRecorder(windowTicks, 250, 2000)
		s := sim.New(sim.Config{
			Seed:  55,
			Start: time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago),
			End:   time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago),
			Step:  simStep,
		})
		s.AddRecorder(locData.rec)
		s.AddRecorder(win)
		if err := s.Run(); err != nil {
			locData.err = err
			return
		}
		ds, err := BuildDataset(win.Positives(), win.Negatives(FeatureSpan), simStep, time.Hour, DeltaFeatures, 56)
		if err != nil {
			locData.err = err
			return
		}
		locData.predictor, locData.err = Train(ds, Config{Seed: 57})
	})
	if locData.err != nil {
		t.Fatal(locData.err)
	}
	return locData.rec, locData.predictor
}

func TestLocationFramesCaptured(t *testing.T) {
	rec, _ := locSetup(t)
	frames := rec.Frames()
	if len(frames) < 1000 {
		t.Fatalf("frames = %d, want hourly frames over four months", len(frames))
	}
	// Frames cover most racks and carry full feature vectors.
	f := frames[len(frames)/2]
	if len(f.Features) < 40 {
		t.Errorf("frame covers %d racks", len(f.Features))
	}
	for rack, feat := range f.Features {
		if len(feat) != NumFeatures {
			t.Fatalf("rack %v features = %d", rack, len(feat))
		}
	}
	if len(rec.Incidents()) == 0 {
		t.Fatal("no incidents recorded")
	}
}

func TestEvaluateLocationRanking(t *testing.T) {
	rec, p := locSetup(t)
	rep, err := EvaluateLocation(rec, p, FeatureSpan, 30*time.Minute, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated < 10 {
		t.Fatalf("evaluated incidents = %d", rep.Evaluated)
	}
	// The epicenter should rank far above a random rack (expected random
	// rank ≈ 24 of 48). The loop-wide precursor also elevates cascade racks,
	// so demand a strong but not perfect ranking.
	if rep.MeanEpicenterRank > 12 {
		t.Errorf("mean epicenter rank = %v, want ≪ 24 (random)", rep.MeanEpicenterRank)
	}
	if rep.Top3 < 0.4 {
		t.Errorf("top-3 accuracy = %v, want the epicenter usually near the top", rep.Top3)
	}
	if rep.Top1 > rep.Top3 {
		t.Error("top-1 cannot exceed top-3")
	}
	// Machine-wide alarms should usually precede a real failure.
	if rep.AlarmFrames == 0 {
		t.Fatal("no alarm frames")
	}
	if rep.FrameAlarmPrecision < 0.5 {
		t.Errorf("frame alarm precision = %v, want most alarms real", rep.FrameAlarmPrecision)
	}
}

func TestEvaluateLocationValidation(t *testing.T) {
	rec, p := locSetup(t)
	if _, err := EvaluateLocation(rec, nil, FeatureSpan, 0, 0.5); err == nil {
		t.Error("nil predictor should error")
	}
	empty := NewLocationRecorder(simStep, 12)
	if _, err := EvaluateLocation(empty, p, FeatureSpan, 0, 0.5); err == nil {
		t.Error("empty recorder should error")
	}
}

func TestLocationRecorderRingOrder(t *testing.T) {
	rec := NewLocationRecorder(5*time.Minute, 1)
	rack := topology.RackID{Row: 0, Col: 0}
	n := rec.ringLen + 5
	base := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	for i := 0; i < n; i++ {
		w := syntheticWindow(1, 5*time.Minute, 0)
		r := w.Records[0]
		r.Rack = rack
		r.Time = base.Add(time.Duration(i) * 5 * time.Minute)
		r.InletTemp = 64
		rec.OnSample(r)
	}
	recs := rec.ringInOrder(rack.Index())
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("ring not in time order")
		}
	}
}
