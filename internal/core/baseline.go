package core

import (
	"errors"
	"math"

	"mira/internal/nn"
	"mira/internal/stats"
)

// ThresholdBaseline is the paper's §VI-D strawman: classic data-center
// monitoring that alarms when metric *levels* cross static thresholds. It
// predicts a CMF when any feature deviates from the training-set mean by
// more than Sigmas standard deviations.
type ThresholdBaseline struct {
	Mean, Std []float64
	// Sigmas is the alarm distance (default 2).
	Sigmas float64
}

// FitThresholdBaseline learns per-feature means/stds from the negative
// (healthy) examples.
func FitThresholdBaseline(ds Dataset, sigmas float64) (*ThresholdBaseline, error) {
	if sigmas <= 0 {
		sigmas = 2
	}
	var healthy [][]float64
	for i, x := range ds.X {
		if ds.Y[i] == 0 {
			healthy = append(healthy, x)
		}
	}
	if len(healthy) == 0 {
		return nil, errors.New("core: threshold baseline needs healthy examples")
	}
	s := nn.FitScaler(healthy)
	return &ThresholdBaseline{Mean: s.Mean, Std: s.Std, Sigmas: sigmas}, nil
}

// Predict alarms when any feature is out of band.
func (b *ThresholdBaseline) Predict(features []float64) bool {
	for j, v := range features {
		if math.Abs(v-b.Mean[j]) > b.Sigmas*b.Std[j] {
			return true
		}
	}
	return false
}

// Evaluate scores the baseline.
func (b *ThresholdBaseline) Evaluate(ds Dataset) stats.Confusion {
	var c stats.Confusion
	for i, x := range ds.X {
		c.Observe(b.Predict(x), ds.Y[i] == 1)
	}
	return c
}

// LogisticBaseline wraps logistic regression over the same features, the
// simplest learned comparator to the paper's neural network.
type LogisticBaseline struct {
	model  *nn.Logistic
	scaler *nn.Scaler
	thresh float64
}

// TrainLogisticBaseline fits the baseline.
func TrainLogisticBaseline(ds Dataset, cfg Config) (*LogisticBaseline, error) {
	cfg = cfg.withDefaults()
	if ds.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	scaler := nn.FitScaler(ds.X)
	X := scaler.TransformAll(ds.X)
	m := nn.NewLogistic(len(ds.X[0]))
	if _, err := m.Fit(X, ds.Y, nn.TrainConfig{Epochs: cfg.Epochs, LearningRate: 0.3, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	return &LogisticBaseline{model: m, scaler: scaler, thresh: cfg.Threshold}, nil
}

// Predict returns the thresholded decision.
func (b *LogisticBaseline) Predict(features []float64) bool {
	return b.model.PredictClass(b.scaler.Transform(features), b.thresh)
}

// Evaluate scores the baseline.
func (b *LogisticBaseline) Evaluate(ds Dataset) stats.Confusion {
	var c stats.Confusion
	for i, x := range ds.X {
		c.Observe(b.Predict(x), ds.Y[i] == 1)
	}
	return c
}
