package core

import (
	"time"

	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/topology"
)

// Avoider is the scheduler surface the controller drives: flag a rack so no
// new work lands on it until the deadline (scheduler.Scheduler satisfies
// this).
type Avoider interface {
	Avoid(r topology.RackID, until time.Time)
}

// AvoidController is an online CMF-aware scheduling controller — the
// paper's closing opportunity ("this work can motivate researchers to
// develop CMF-aware job schedulers and resource management strategies").
// Attached to a simulation as a recorder, it watches every rack's trailing
// telemetry through the trained predictor and, on a sustained alert, tells
// the scheduler to stop placing new jobs on the endangered rack so its work
// drains before the failure.
type AvoidController struct {
	sim.NopRecorder

	predictor *Predictor
	sched     Avoider
	step      time.Duration
	threshold float64
	sustain   int
	avoidFor  time.Duration

	rings   [topology.NumRacks][]sensors.Record
	ringPos [topology.NumRacks]int
	full    [topology.NumRacks]bool
	consec  [topology.NumRacks]int

	// AlertsRaised counts the sustained alerts acted on.
	AlertsRaised int
}

// NewAvoidController wires a trained predictor to a scheduler. threshold
// defaults to 0.9, sustain to 2 consecutive samples, avoidFor to 6 h.
func NewAvoidController(p *Predictor, sched Avoider, step time.Duration) *AvoidController {
	c := &AvoidController{
		predictor: p,
		sched:     sched,
		step:      step,
		threshold: 0.9,
		sustain:   2,
		avoidFor:  6 * time.Hour,
	}
	ringLen := int(FeatureSpan/step) + 1
	for i := range c.rings {
		c.rings[i] = make([]sensors.Record, ringLen)
	}
	return c
}

// OnSample scores the rack's trailing window and flags the scheduler on a
// sustained alert.
func (c *AvoidController) OnSample(rec sensors.Record) {
	i := rec.Rack.Index()
	ringLen := len(c.rings[i])
	c.rings[i][c.ringPos[i]] = rec
	c.ringPos[i] = (c.ringPos[i] + 1) % ringLen
	if c.ringPos[i] == 0 {
		c.full[i] = true
	}
	if !c.full[i] {
		return
	}
	ordered := make([]sensors.Record, 0, ringLen)
	ordered = append(ordered, c.rings[i][c.ringPos[i]:]...)
	ordered = append(ordered, c.rings[i][:c.ringPos[i]]...)
	f, err := DeltaFeatures(ordered, c.step, 0)
	if err != nil {
		c.consec[i] = 0
		return
	}
	if c.predictor.Probability(f) >= c.threshold {
		c.consec[i]++
	} else {
		c.consec[i] = 0
	}
	if c.consec[i] == c.sustain {
		c.sched.Avoid(rec.Rack, rec.Time.Add(c.avoidFor))
		c.AlertsRaised++
	}
}
