// Package core implements the paper's primary contribution: the neural-
// network-based coolant-monitor-failure predictor (§VI-B, Fig. 13).
//
// The pipeline follows the paper: the input features are the *changes* of
// the six coolant-monitor metrics (coolant flow, inlet temperature, outlet
// temperature, power, data-center temperature, and humidity) over the past
// six hours; positives are windows ending at a CMF, negatives are windows
// sampled evenly across production with no CMF in the following six hours;
// the classifier is a feed-forward network with three hidden layers
// (12, 12, 6 — tunable by Bayesian optimization), ReLU activations, a
// sigmoid output, trained for 50 epochs on a 3:1:1-style split; evaluation
// runs 5-fold cross-validation at lead times from 30 minutes to six hours.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mira/internal/bayesopt"
	"mira/internal/nn"
	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/stats"
)

// FeatureSpan is the paper's feature window: the change in each metric over
// the past six hours.
const FeatureSpan = 6 * time.Hour

// NumFeatures is the input dimension: one delta per coolant-monitor metric.
const NumFeatures = int(sensors.NumMetrics)

// EndpointSmoothing is how much telemetry each end of the six-hour delta is
// averaged over, suppressing single-sample sensor noise.
const EndpointSmoothing = 30 * time.Minute

// DeltaFeatures extracts the predictor's input vector from a telemetry
// window, as seen at `lead` before the window's end: for each metric, the
// relative change between (end−lead) and (end−lead−FeatureSpan), with each
// endpoint averaged over EndpointSmoothing to suppress sensor noise.
// It returns an error when the window is too short to cover the span.
func DeltaFeatures(records []sensors.Record, step, lead time.Duration) ([]float64, error) {
	if step <= 0 {
		return nil, errors.New("core: non-positive step")
	}
	n := len(records)
	endIdx := n - 1 - int(lead/step)
	startIdx := endIdx - int(FeatureSpan/step)
	if startIdx < 0 || endIdx >= n || endIdx <= startIdx {
		return nil, fmt.Errorf("core: window of %d records cannot cover lead %v plus span %v at step %v",
			n, lead, FeatureSpan, step)
	}
	k := int(EndpointSmoothing/step) + 1
	if k > (endIdx-startIdx)/2 {
		k = (endIdx-startIdx)/2 + 1
	}
	out := make([]float64, 0, NumFeatures)
	for _, m := range sensors.AllMetrics() {
		// Early endpoint: forward mean from startIdx; late endpoint:
		// backward mean ending at endIdx. Both stay inside the window.
		var a, b float64
		for i := 0; i < k; i++ {
			a += records[startIdx+i].Value(m)
			b += records[endIdx-i].Value(m)
		}
		a /= float64(k)
		b /= float64(k)
		if a == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (b-a)/a)
	}
	return out, nil
}

// LevelFeatures extracts the *absolute level* of each metric at the lead
// point instead of its change — the ablation showing why threshold-style
// level monitoring is insufficient (paper §VI-D).
func LevelFeatures(records []sensors.Record, step, lead time.Duration) ([]float64, error) {
	if step <= 0 {
		return nil, errors.New("core: non-positive step")
	}
	n := len(records)
	endIdx := n - 1 - int(lead/step)
	if endIdx < 0 || endIdx >= n {
		return nil, fmt.Errorf("core: window of %d records cannot cover lead %v at step %v", n, lead, step)
	}
	rec := records[endIdx]
	out := make([]float64, 0, NumFeatures)
	for _, m := range sensors.AllMetrics() {
		out = append(out, rec.Value(m))
	}
	return out, nil
}

// Dataset is a labeled feature matrix (Y ∈ {0, 1}).
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// Positives returns the number of positive labels.
func (d Dataset) Positives() int {
	n := 0
	for _, y := range d.Y {
		if y == 1 {
			n++
		}
	}
	return n
}

// Extractor converts a window into features (DeltaFeatures or
// LevelFeatures, partially applied over step and lead).
type Extractor func(records []sensors.Record, step, lead time.Duration) ([]float64, error)

// BuildDataset assembles a balanced dataset from positive (pre-CMF) and
// negative (quiet) windows at the given lead time. Windows too short for
// the lead are skipped; the majority class is down-sampled to balance
// (paper: "the testing set also contains equal number of samples from both
// positive and negative classes").
func BuildDataset(positives, negatives []sim.Window, step, lead time.Duration, extract Extractor, seed int64) (Dataset, error) {
	if extract == nil {
		extract = DeltaFeatures
	}
	var pos, neg [][]float64
	for _, w := range positives {
		f, err := extract(w.Records, step, lead)
		if err != nil {
			continue
		}
		pos = append(pos, f)
	}
	for _, w := range negatives {
		f, err := extract(w.Records, step, lead)
		if err != nil {
			continue
		}
		neg = append(neg, f)
	}
	if len(pos) == 0 || len(neg) == 0 {
		return Dataset{}, fmt.Errorf("core: need both classes, got %d positive / %d negative usable windows", len(pos), len(neg))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	var ds Dataset
	for i := 0; i < n; i++ {
		ds.X = append(ds.X, pos[i])
		ds.Y = append(ds.Y, 1)
		ds.X = append(ds.X, neg[i])
		ds.Y = append(ds.Y, 0)
	}
	return ds, nil
}

// Config controls training.
type Config struct {
	// Hidden is the architecture (default the paper's 12, 12, 6).
	Hidden []int
	// Epochs (default 50, per the paper).
	Epochs int
	// Threshold for the positive class (default 0.5).
	Threshold float64
	// Seed drives initialization and shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{12, 12, 6}
	}
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	return c
}

// Predictor is a trained CMF classifier.
type Predictor struct {
	net    *nn.Network
	scaler *nn.Scaler
	cfg    Config
}

// Train fits a predictor on the dataset.
func Train(ds Dataset, cfg Config) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if ds.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	scaler := nn.FitScaler(ds.X)
	X := scaler.TransformAll(ds.X)
	net, err := nn.New(nn.Config{Inputs: len(ds.X[0]), Hidden: cfg.Hidden, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	_, err = net.Fit(X, ds.Y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		Optimizer: nn.Adam,
		Seed:      cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return &Predictor{net: net, scaler: scaler, cfg: cfg}, nil
}

// Probability returns P(CMF within the horizon | features).
func (p *Predictor) Probability(features []float64) float64 {
	return p.net.Predict(p.scaler.Transform(features))
}

// Predict returns the thresholded decision.
func (p *Predictor) Predict(features []float64) bool {
	return p.Probability(features) >= p.cfg.Threshold
}

// Evaluate scores the predictor on a labeled set.
func (p *Predictor) Evaluate(ds Dataset) stats.Confusion {
	var c stats.Confusion
	for i, x := range ds.X {
		c.Observe(p.Predict(x), ds.Y[i] == 1)
	}
	return c
}

// CrossValidate runs k-fold cross-validation (paper: 5-fold, "for
// robustness against sample selection") and returns the pooled confusion
// matrix.
func CrossValidate(ds Dataset, cfg Config, k int) (stats.Confusion, error) {
	cfg = cfg.withDefaults()
	if k <= 1 {
		k = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	folds := stats.KFold(ds.Len(), k, rng)
	var pooled stats.Confusion
	for fi, test := range folds {
		var train Dataset
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		for i := range ds.X {
			if !inTest[i] {
				train.X = append(train.X, ds.X[i])
				train.Y = append(train.Y, ds.Y[i])
			}
		}
		p, err := Train(train, Config{Hidden: cfg.Hidden, Epochs: cfg.Epochs, Threshold: cfg.Threshold, Seed: cfg.Seed + int64(fi)*101})
		if err != nil {
			return stats.Confusion{}, fmt.Errorf("core: fold %d: %w", fi, err)
		}
		for _, i := range test {
			pooled.Observe(p.Predict(ds.X[i]), ds.Y[i] == 1)
		}
	}
	return pooled, nil
}

// LeadPoint is one Fig. 13 x-axis position.
type LeadPoint struct {
	Lead      time.Duration
	Confusion stats.Confusion
}

// LeadTimeSweep evaluates the predictor at each lead time with k-fold
// cross-validation — the Fig. 13 series. Leads should descend from six
// hours to 30 minutes.
func LeadTimeSweep(positives, negatives []sim.Window, step time.Duration, leads []time.Duration, cfg Config, extract Extractor) ([]LeadPoint, error) {
	var out []LeadPoint
	for _, lead := range leads {
		ds, err := BuildDataset(positives, negatives, step, lead, extract, cfg.Seed+int64(lead/time.Minute))
		if err != nil {
			return nil, fmt.Errorf("core: lead %v: %w", lead, err)
		}
		conf, err := CrossValidate(ds, cfg, 5)
		if err != nil {
			return nil, fmt.Errorf("core: lead %v: %w", lead, err)
		}
		out = append(out, LeadPoint{Lead: lead, Confusion: conf})
	}
	return out, nil
}

// DefaultLeads is the Fig. 13 x-axis: 30 minutes to six hours.
func DefaultLeads() []time.Duration {
	return []time.Duration{
		6 * time.Hour, 5 * time.Hour, 4 * time.Hour, 3 * time.Hour,
		2 * time.Hour, time.Hour, 30 * time.Minute,
	}
}

// TuneArchitecture uses Bayesian optimization (the paper's hyper-parameter
// tuning method) to pick the hidden-layer widths minimizing cross-validated
// loss. budget is the number of BO iterations after the initial random
// probes.
func TuneArchitecture(ds Dataset, cfg Config, budget int) ([]int, error) {
	cfg = cfg.withDefaults()
	grid := bayesopt.IntGrid(
		[]int{4, 8, 12, 16},
		[]int{4, 8, 12, 16},
		[]int{2, 4, 6, 8},
	)
	objective := func(x []float64) float64 {
		hidden := []int{int(x[0]), int(x[1]), int(x[2])}
		conf, err := CrossValidate(ds, Config{Hidden: hidden, Epochs: cfg.Epochs, Seed: cfg.Seed}, 3)
		if err != nil {
			return 1e9
		}
		return 1 - conf.Accuracy()
	}
	res, err := bayesopt.Minimize(objective, bayesopt.Config{
		Candidates:  grid,
		InitSamples: 4,
		Iterations:  budget,
		LengthScale: 6,
		Seed:        cfg.Seed + 7,
	})
	if err != nil {
		return nil, err
	}
	return []int{int(res.Best[0]), int(res.Best[1]), int(res.Best[2])}, nil
}
