package topology

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if NumRacks != 48 {
		t.Errorf("NumRacks = %d", NumRacks)
	}
	if NodesPerRack != 1024 {
		t.Errorf("NodesPerRack = %d", NodesPerRack)
	}
	if TotalNodes != 49152 {
		t.Errorf("TotalNodes = %d", TotalNodes)
	}
	if TotalCores != 786432 {
		t.Errorf("TotalCores = %d", TotalCores)
	}
	if NodesPerMidplane != 512 {
		t.Errorf("NodesPerMidplane = %d", NodesPerMidplane)
	}
	if NumMidplanes != 96 {
		t.Errorf("NumMidplanes = %d", NumMidplanes)
	}
	if IONRacks != 6 {
		t.Errorf("IONRacks = %d", IONRacks)
	}
}

func TestRackIDIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumRacks; i++ {
		r := RackByIndex(i)
		if !r.Valid() {
			t.Fatalf("RackByIndex(%d) = %v invalid", i, r)
		}
		if r.Index() != i {
			t.Fatalf("round trip failed: %d -> %v -> %d", i, r, r.Index())
		}
	}
}

func TestRackByIndexPanics(t *testing.T) {
	for _, i := range []int{-1, 48, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RackByIndex(%d) should panic", i)
				}
			}()
			RackByIndex(i)
		}()
	}
}

func TestRackIDString(t *testing.T) {
	cases := []struct {
		r    RackID
		want string
	}{
		{RackID{0, 13}, "(0,D)"},
		{RackID{1, 8}, "(1,8)"},
		{RackID{2, 7}, "(2,7)"},
		{RackID{0, 10}, "(0,A)"},
		{RackID{1, 4}, "(1,4)"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.r, got, tc.want)
		}
	}
}

func TestParseRackID(t *testing.T) {
	for _, s := range []string{"(0,D)", "(1,8)", "(2,f)", " (0, A) "} {
		r, err := ParseRackID(s)
		if err != nil {
			t.Errorf("ParseRackID(%q): %v", s, err)
			continue
		}
		if !r.Valid() {
			t.Errorf("ParseRackID(%q) = %v invalid", s, r)
		}
	}
	for _, s := range []string{"", "(3,0)", "(0,G)", "(0)", "0,1,2"} {
		if _, err := ParseRackID(s); err == nil {
			t.Errorf("ParseRackID(%q) should fail", s)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(i uint) bool {
		r := RackByIndex(int(i % NumRacks))
		parsed, err := ParseRackID(r.String())
		return err == nil && parsed == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllRacksAndRows(t *testing.T) {
	all := AllRacks()
	if len(all) != NumRacks {
		t.Fatalf("AllRacks len = %d", len(all))
	}
	seen := make(map[RackID]bool)
	for _, r := range all {
		if seen[r] {
			t.Fatalf("duplicate rack %v", r)
		}
		seen[r] = true
	}
	row1 := RowRacks(1)
	if len(row1) != ColsPerRow {
		t.Fatalf("RowRacks len = %d", len(row1))
	}
	for c, r := range row1 {
		if r.Row != 1 || r.Col != c {
			t.Errorf("RowRacks[1][%d] = %v", c, r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("RowRacks(3) should panic")
		}
	}()
	RowRacks(3)
}

func TestDistanceFromRowEnd(t *testing.T) {
	cases := []struct {
		col, want int
	}{
		{0, 0}, {15, 0}, {1, 1}, {14, 1}, {7, 7}, {8, 7},
	}
	for _, tc := range cases {
		r := RackID{Row: 0, Col: tc.col}
		if got := r.DistanceFromRowEnd(); got != tc.want {
			t.Errorf("DistanceFromRowEnd(col=%d) = %d, want %d", tc.col, got, tc.want)
		}
	}
}

func TestWellKnownRacks(t *testing.T) {
	if ClockRoot.String() != "(1,4)" {
		t.Errorf("ClockRoot = %v", ClockRoot)
	}
	if HumidityHotspot.String() != "(1,8)" {
		t.Errorf("HumidityHotspot = %v", HumidityHotspot)
	}
	if HotRack.String() != "(0,D)" {
		t.Errorf("HotRack = %v", HotRack)
	}
	if BusyRack.String() != "(0,A)" {
		t.Errorf("BusyRack = %v", BusyRack)
	}
	if QuietRack.String() != "(2,7)" {
		t.Errorf("QuietRack = %v", QuietRack)
	}
}

func TestClockGraphRoot(t *testing.T) {
	g := NewClockGraph()
	if _, ok := g.Parent(ClockRoot); ok {
		t.Error("root should have no parent")
	}
	// Paper: if rack (1,4) fails, the entire system fails.
	dom := g.FailureDomain(ClockRoot)
	if len(dom) != NumRacks {
		t.Errorf("root failure domain = %d racks, want all %d", len(dom), NumRacks)
	}
}

func TestClockGraphRelay(t *testing.T) {
	g := NewClockGraph()
	// Paper: rack (0,9) gets its clock through rack (0,A).
	p, ok := g.Parent(ClockLeaf09)
	if !ok || p != ClockRelay0A {
		t.Errorf("parent of (0,9) = %v, want (0,A)", p)
	}
	dom := g.FailureDomain(ClockRelay0A)
	if len(dom) != 2 {
		t.Fatalf("(0,A) failure domain = %v, want itself and (0,9)", dom)
	}
	found := false
	for _, r := range dom {
		if r == ClockLeaf09 {
			found = true
		}
	}
	if !found {
		t.Error("(0,9) should fail when (0,A) fails")
	}
}

func TestClockGraphLeaf(t *testing.T) {
	g := NewClockGraph()
	// An ordinary rack takes only itself down.
	dom := g.FailureDomain(RackID{Row: 2, Col: 3})
	if len(dom) != 1 {
		t.Errorf("leaf failure domain = %v, want only itself", dom)
	}
	// (0,9) is a leaf too.
	if dom := g.FailureDomain(ClockLeaf09); len(dom) != 1 {
		t.Errorf("(0,9) failure domain = %v", dom)
	}
}

func TestClockGraphEveryRackDependsOnRoot(t *testing.T) {
	g := NewClockGraph()
	deps := g.Dependents(ClockRoot)
	if len(deps) != NumRacks-1 {
		t.Errorf("root dependents = %d, want %d", len(deps), NumRacks-1)
	}
}
