package topology

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if NumRacks != 48 {
		t.Errorf("NumRacks = %d", NumRacks)
	}
	if NodesPerRack != 1024 {
		t.Errorf("NodesPerRack = %d", NodesPerRack)
	}
	if TotalNodes != 49152 {
		t.Errorf("TotalNodes = %d", TotalNodes)
	}
	if TotalCores != 786432 {
		t.Errorf("TotalCores = %d", TotalCores)
	}
	if NodesPerMidplane != 512 {
		t.Errorf("NodesPerMidplane = %d", NodesPerMidplane)
	}
	if NumMidplanes != 96 {
		t.Errorf("NumMidplanes = %d", NumMidplanes)
	}
	if IONRacks != 6 {
		t.Errorf("IONRacks = %d", IONRacks)
	}
}

func TestRackIDIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumRacks; i++ {
		r := RackByIndex(i)
		if !r.Valid() {
			t.Fatalf("RackByIndex(%d) = %v invalid", i, r)
		}
		if r.Index() != i {
			t.Fatalf("round trip failed: %d -> %v -> %d", i, r, r.Index())
		}
	}
}

func TestRackByIndexPanics(t *testing.T) {
	for _, i := range []int{-1, 48, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RackByIndex(%d) should panic", i)
				}
			}()
			RackByIndex(i)
		}()
	}
}

func TestRackIDString(t *testing.T) {
	cases := []struct {
		r    RackID
		want string
	}{
		{RackID{Row: 0, Col: 13}, "(0,D)"},
		{RackID{Row: 1, Col: 8}, "(1,8)"},
		{RackID{Row: 2, Col: 7}, "(2,7)"},
		{RackID{Row: 0, Col: 10}, "(0,A)"},
		{RackID{Row: 1, Col: 4}, "(1,4)"},
		{RackID{Row: 0, Col: 13, Hall: 2}, "h2(0,D)"},
		{RackID{Row: 1, Col: 4, Hall: 17}, "h17(1,4)"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.r, got, tc.want)
		}
	}
}

func TestParseRackID(t *testing.T) {
	for _, s := range []string{"(0,D)", "(1,8)", "(2,f)", " (0, A) ", "h3(1,8)", "h255(0,0)"} {
		r, err := ParseRackID(s)
		if err != nil {
			t.Errorf("ParseRackID(%q): %v", s, err)
			continue
		}
		if !r.Valid() {
			t.Errorf("ParseRackID(%q) = %v invalid", s, r)
		}
	}
	for _, s := range []string{"", "(3,0)", "(0,G)", "(0)", "0,1,2", "h(0,0)", "hx(0,0)", "h256(0,0)"} {
		if _, err := ParseRackID(s); err == nil {
			t.Errorf("ParseRackID(%q) should fail", s)
		}
	}
	if r, err := ParseRackID("h3(1,8)"); err != nil || r != (RackID{Row: 1, Col: 8, Hall: 3}) {
		t.Errorf("ParseRackID(h3(1,8)) = %v, %v", r, err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(i, h uint) bool {
		r := RackByIndex(int(i % NumRacks))
		r.Hall = int(h % MaxHalls)
		parsed, err := ParseRackID(r.String())
		return err == nil && parsed == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRackCodeRoundTrip(t *testing.T) {
	for _, r := range []RackID{
		{Row: 0, Col: 0},
		{Row: 2, Col: 15},
		{Row: 1, Col: 4, Hall: 3},
		{Row: 0, Col: 13, Hall: 255},
	} {
		got, err := RackFromCode(r.Code())
		if err != nil || got != r {
			t.Errorf("RackFromCode(Code(%v)) = %v, %v", r, got, err)
		}
	}
	// Hall-0 codes equal the plain within-hall index, preserving the v1
	// wire encoding's rack byte.
	if c := (RackID{Row: 0, Col: 13}).Code(); c != 13 {
		t.Errorf("hall-0 code = %d, want 13", c)
	}
	if _, err := RackFromCode(0x0130); err == nil {
		t.Error("RackFromCode should reject within-hall index 48")
	}
}

func TestFleet(t *testing.T) {
	var zero Fleet
	if zero.NumRacks() != NumRacks {
		t.Errorf("zero fleet racks = %d", zero.NumRacks())
	}
	if got := zero.Norm(); got.Halls != 1 || got.Racks != NumRacks {
		t.Errorf("zero fleet norm = %+v", got)
	}
	f := Fleet{Halls: 4, Racks: 48}
	if f.NumRacks() != 192 {
		t.Fatalf("fleet racks = %d", f.NumRacks())
	}
	for g := 0; g < f.NumRacks(); g++ {
		r := f.RackAt(g)
		if !f.Contains(r) {
			t.Fatalf("RackAt(%d) = %v not contained", g, r)
		}
		if f.GlobalIndex(r) != g {
			t.Fatalf("GlobalIndex(RackAt(%d)) = %d", g, f.GlobalIndex(r))
		}
	}
	if f.Contains(RackID{Row: 0, Col: 0, Hall: 4}) {
		t.Error("hall 4 should be outside a 4-hall fleet")
	}
	small := Fleet{Halls: 2, Racks: 8}
	if small.Contains(RackID{Row: 0, Col: 8}) {
		t.Error("within-hall index 8 should be outside an 8-rack hall")
	}
	all := f.AllRacks()
	if len(all) != 192 || all[0] != (RackID{}) || all[48].Hall != 1 {
		t.Errorf("AllRacks: len=%d first=%v [48]=%v", len(all), all[0], all[48])
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range fleet should panic on Norm")
		}
	}()
	Fleet{Halls: MaxHalls + 1}.Norm()
}

func TestAllRacksAndRows(t *testing.T) {
	all := AllRacks()
	if len(all) != NumRacks {
		t.Fatalf("AllRacks len = %d", len(all))
	}
	seen := make(map[RackID]bool)
	for _, r := range all {
		if seen[r] {
			t.Fatalf("duplicate rack %v", r)
		}
		seen[r] = true
	}
	row1 := RowRacks(1)
	if len(row1) != ColsPerRow {
		t.Fatalf("RowRacks len = %d", len(row1))
	}
	for c, r := range row1 {
		if r.Row != 1 || r.Col != c {
			t.Errorf("RowRacks[1][%d] = %v", c, r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("RowRacks(3) should panic")
		}
	}()
	RowRacks(3)
}

func TestDistanceFromRowEnd(t *testing.T) {
	cases := []struct {
		col, want int
	}{
		{0, 0}, {15, 0}, {1, 1}, {14, 1}, {7, 7}, {8, 7},
	}
	for _, tc := range cases {
		r := RackID{Row: 0, Col: tc.col}
		if got := r.DistanceFromRowEnd(); got != tc.want {
			t.Errorf("DistanceFromRowEnd(col=%d) = %d, want %d", tc.col, got, tc.want)
		}
	}
}

func TestWellKnownRacks(t *testing.T) {
	if ClockRoot.String() != "(1,4)" {
		t.Errorf("ClockRoot = %v", ClockRoot)
	}
	if HumidityHotspot.String() != "(1,8)" {
		t.Errorf("HumidityHotspot = %v", HumidityHotspot)
	}
	if HotRack.String() != "(0,D)" {
		t.Errorf("HotRack = %v", HotRack)
	}
	if BusyRack.String() != "(0,A)" {
		t.Errorf("BusyRack = %v", BusyRack)
	}
	if QuietRack.String() != "(2,7)" {
		t.Errorf("QuietRack = %v", QuietRack)
	}
}

func TestClockGraphRoot(t *testing.T) {
	g := NewClockGraph()
	if _, ok := g.Parent(ClockRoot); ok {
		t.Error("root should have no parent")
	}
	// Paper: if rack (1,4) fails, the entire system fails.
	dom := g.FailureDomain(ClockRoot)
	if len(dom) != NumRacks {
		t.Errorf("root failure domain = %d racks, want all %d", len(dom), NumRacks)
	}
}

func TestClockGraphRelay(t *testing.T) {
	g := NewClockGraph()
	// Paper: rack (0,9) gets its clock through rack (0,A).
	p, ok := g.Parent(ClockLeaf09)
	if !ok || p != ClockRelay0A {
		t.Errorf("parent of (0,9) = %v, want (0,A)", p)
	}
	dom := g.FailureDomain(ClockRelay0A)
	if len(dom) != 2 {
		t.Fatalf("(0,A) failure domain = %v, want itself and (0,9)", dom)
	}
	found := false
	for _, r := range dom {
		if r == ClockLeaf09 {
			found = true
		}
	}
	if !found {
		t.Error("(0,9) should fail when (0,A) fails")
	}
}

func TestClockGraphLeaf(t *testing.T) {
	g := NewClockGraph()
	// An ordinary rack takes only itself down.
	dom := g.FailureDomain(RackID{Row: 2, Col: 3})
	if len(dom) != 1 {
		t.Errorf("leaf failure domain = %v, want only itself", dom)
	}
	// (0,9) is a leaf too.
	if dom := g.FailureDomain(ClockLeaf09); len(dom) != 1 {
		t.Errorf("(0,9) failure domain = %v", dom)
	}
}

func TestClockGraphEveryRackDependsOnRoot(t *testing.T) {
	g := NewClockGraph()
	deps := g.Dependents(ClockRoot)
	if len(deps) != NumRacks-1 {
		t.Errorf("root dependents = %d, want %d", len(deps), NumRacks-1)
	}
}
