// Package topology models the physical and logical structure of the Mira
// Blue Gene/Q system: 48 compute racks arranged in 3 rows of 16 columns,
// the midplane/node-board/node hierarchy, the air-cooled I/O rack rows, and
// the clock-signal dependency graph that turns single-rack coolant-monitor
// failures into system-wide outages.
package topology

import (
	"fmt"
	"strings"
)

// System-level constants of the Mira machine (paper §II).
const (
	// Rows of compute racks.
	Rows = 3
	// ColsPerRow is the number of compute racks per row.
	ColsPerRow = 16
	// NumRacks is the total number of compute racks.
	NumRacks = Rows * ColsPerRow
	// MidplanesPerRack is the allocation granularity of the scheduler.
	MidplanesPerRack = 2
	// NumMidplanes is the system-wide midplane count.
	NumMidplanes = NumRacks * MidplanesPerRack
	// NodeBoardsPerMidplane per the BG/Q design.
	NodeBoardsPerMidplane = 16
	// NodesPerBoard compute cards per node board.
	NodesPerBoard = 32
	// NodesPerMidplane = 512.
	NodesPerMidplane = NodeBoardsPerMidplane * NodesPerBoard
	// NodesPerRack = 1,024.
	NodesPerRack = MidplanesPerRack * NodesPerMidplane
	// TotalNodes = 49,152.
	TotalNodes = NumRacks * NodesPerRack
	// ActiveCoresPerNode: 16 of the 18 A2 cores run computation.
	ActiveCoresPerNode = 16
	// TotalCores = 786,432 active cores.
	TotalCores = TotalNodes * ActiveCoresPerNode
	// IONRacks is the number of air-cooled I/O forwarding-node racks (two
	// at the end of each row).
	IONRacks = 6
)

// RackID identifies a compute rack by row (0–2) and column (0–15). The paper
// writes racks as (row, column) with hexadecimal columns, e.g. (1, 8) or
// (0, D).
type RackID struct {
	Row int
	Col int
}

// Valid reports whether the rack coordinates are on the floor.
func (r RackID) Valid() bool {
	return r.Row >= 0 && r.Row < Rows && r.Col >= 0 && r.Col < ColsPerRow
}

// Index returns the dense index of the rack in [0, NumRacks).
func (r RackID) Index() int { return r.Row*ColsPerRow + r.Col }

// RackByIndex returns the RackID for a dense index in [0, NumRacks).
// It panics on an out-of-range index (programmer error).
func RackByIndex(i int) RackID {
	if i < 0 || i >= NumRacks {
		panic(fmt.Sprintf("topology: rack index %d out of range", i))
	}
	return RackID{Row: i / ColsPerRow, Col: i % ColsPerRow}
}

// String renders the paper's (row, hex-column) notation, e.g. "(0,D)".
func (r RackID) String() string {
	return fmt.Sprintf("(%d,%c)", r.Row, hexDigit(r.Col))
}

func hexDigit(c int) byte {
	const digits = "0123456789ABCDEF"
	if c < 0 || c >= len(digits) {
		return '?'
	}
	return digits[c]
}

// ParseRackID parses the "(row,col)" notation, accepting hex column digits
// in either case.
func ParseRackID(s string) (RackID, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	parts := strings.Split(t, ",")
	if len(parts) != 2 {
		return RackID{}, fmt.Errorf("topology: malformed rack id %q", s)
	}
	rowStr := strings.TrimSpace(parts[0])
	colStr := strings.TrimSpace(parts[1])
	if len(rowStr) != 1 || rowStr[0] < '0' || rowStr[0] > '2' {
		return RackID{}, fmt.Errorf("topology: bad row in rack id %q", s)
	}
	if len(colStr) != 1 {
		return RackID{}, fmt.Errorf("topology: bad column in rack id %q", s)
	}
	col := strings.IndexByte("0123456789ABCDEF", colStr[0])
	if col < 0 {
		col = strings.IndexByte("0123456789abcdef", colStr[0])
	}
	if col < 0 {
		return RackID{}, fmt.Errorf("topology: bad column in rack id %q", s)
	}
	return RackID{Row: int(rowStr[0] - '0'), Col: col}, nil
}

// AllRacks returns every compute rack in dense-index order.
func AllRacks() []RackID {
	out := make([]RackID, NumRacks)
	for i := range out {
		out[i] = RackByIndex(i)
	}
	return out
}

// RowRacks returns the racks of one row in column order.
func RowRacks(row int) []RackID {
	if row < 0 || row >= Rows {
		panic(fmt.Sprintf("topology: row %d out of range", row))
	}
	out := make([]RackID, ColsPerRow)
	for c := range out {
		out[c] = RackID{Row: row, Col: c}
	}
	return out
}

// DistanceFromRowEnd returns how many racks separate r from the nearest end
// of its row (0 for the outermost racks). The paper attributes reduced
// underfloor airflow — and hence drier, warmer ambient conditions — to the
// last three or four racks on either side of each row.
func (r RackID) DistanceFromRowEnd() int {
	left := r.Col
	right := ColsPerRow - 1 - r.Col
	if left < right {
		return left
	}
	return right
}

// Well-known racks called out by the paper.
var (
	// ClockRoot is rack (1,4): all racks receive their clock signal through
	// it, so its failure takes down the entire system.
	ClockRoot = RackID{Row: 1, Col: 4}
	// ClockRelay0A is rack (0,A), which relays the clock to rack (0,9).
	ClockRelay0A = RackID{Row: 0, Col: 0xA}
	// ClockLeaf09 is rack (0,9), which has no clock card of its own.
	ClockLeaf09 = RackID{Row: 0, Col: 9}
	// HumidityHotspot is rack (1,8), the localized humidity hotspot in the
	// center of row 1 and the rack with the most CMFs (14).
	HumidityHotspot = RackID{Row: 1, Col: 8}
	// QuietRack is rack (2,7), the rack with the fewest CMFs (5).
	QuietRack = RackID{Row: 2, Col: 7}
	// HotRack is rack (0,D), the rack with the highest power consumption.
	HotRack = RackID{Row: 0, Col: 0xD}
	// BusyRack is rack (0,A), the rack with the highest utilization.
	BusyRack = RackID{Row: 0, Col: 0xA}
)

// ClockGraph is the clock-signal distribution tree. Every rack except the
// root receives its clock through its parent; when a rack goes down, its
// entire clock subtree loses the signal and fails with it.
type ClockGraph struct {
	parent map[RackID]RackID
}

// NewClockGraph builds Mira's clock tree: rack (1,4) is the source for the
// whole system, and rack (0,9) is chained through rack (0,A) (paper §VI-A).
func NewClockGraph() *ClockGraph {
	g := &ClockGraph{parent: make(map[RackID]RackID)}
	for _, r := range AllRacks() {
		if r == ClockRoot {
			continue
		}
		g.parent[r] = ClockRoot
	}
	g.parent[ClockLeaf09] = ClockRelay0A
	return g
}

// Parent returns the clock parent of r; ok is false for the root.
func (g *ClockGraph) Parent(r RackID) (RackID, bool) {
	p, ok := g.parent[r]
	return p, ok
}

// Dependents returns every rack whose clock signal passes through r
// (directly or transitively), excluding r itself. For the root this is all
// other racks.
func (g *ClockGraph) Dependents(r RackID) []RackID {
	var out []RackID
	for _, cand := range AllRacks() {
		if cand == r {
			continue
		}
		if g.dependsOn(cand, r) {
			out = append(out, cand)
		}
	}
	return out
}

// dependsOn reports whether the clock path of rack a passes through b.
func (g *ClockGraph) dependsOn(a, b RackID) bool {
	for {
		p, ok := g.parent[a]
		if !ok {
			return false
		}
		if p == b {
			return true
		}
		a = p
	}
}

// FailureDomain returns the set of racks that go down when r fails: r plus
// its clock dependents.
func (g *ClockGraph) FailureDomain(r RackID) []RackID {
	return append([]RackID{r}, g.Dependents(r)...)
}
