// Package topology models the physical and logical structure of the Mira
// Blue Gene/Q system: 48 compute racks arranged in 3 rows of 16 columns,
// the midplane/node-board/node hierarchy, the air-cooled I/O rack rows, and
// the clock-signal dependency graph that turns single-rack coolant-monitor
// failures into system-wide outages.
package topology

import (
	"fmt"
	"strings"
)

// System-level constants of the Mira machine (paper §II).
const (
	// Rows of compute racks.
	Rows = 3
	// ColsPerRow is the number of compute racks per row.
	ColsPerRow = 16
	// NumRacks is the total number of compute racks.
	NumRacks = Rows * ColsPerRow
	// MidplanesPerRack is the allocation granularity of the scheduler.
	MidplanesPerRack = 2
	// NumMidplanes is the system-wide midplane count.
	NumMidplanes = NumRacks * MidplanesPerRack
	// NodeBoardsPerMidplane per the BG/Q design.
	NodeBoardsPerMidplane = 16
	// NodesPerBoard compute cards per node board.
	NodesPerBoard = 32
	// NodesPerMidplane = 512.
	NodesPerMidplane = NodeBoardsPerMidplane * NodesPerBoard
	// NodesPerRack = 1,024.
	NodesPerRack = MidplanesPerRack * NodesPerMidplane
	// TotalNodes = 49,152.
	TotalNodes = NumRacks * NodesPerRack
	// ActiveCoresPerNode: 16 of the 18 A2 cores run computation.
	ActiveCoresPerNode = 16
	// TotalCores = 786,432 active cores.
	TotalCores = TotalNodes * ActiveCoresPerNode
	// IONRacks is the number of air-cooled I/O forwarding-node racks (two
	// at the end of each row).
	IONRacks = 6
	// MaxHalls bounds the fleet size so a rack identity packs into a
	// uint16 wire code (hall byte + within-hall index byte).
	MaxHalls = 256
)

// RackID identifies a compute rack by row (0–2) and column (0–15). The paper
// writes racks as (row, column) with hexadecimal columns, e.g. (1, 8) or
// (0, D). A fleet deployment (several Mira-class machines feeding one store)
// qualifies the coordinates with a hall number; the zero Hall is the paper's
// single machine, so existing RackID literals and comparisons are unchanged.
type RackID struct {
	Row int
	Col int
	// Hall is the machine-hall number in a multi-hall fleet (0 for the
	// single-machine layout the paper studies).
	Hall int
}

// Valid reports whether the rack coordinates are on the floor of its hall.
func (r RackID) Valid() bool {
	return r.Row >= 0 && r.Row < Rows && r.Col >= 0 && r.Col < ColsPerRow &&
		r.Hall >= 0 && r.Hall < MaxHalls
}

// Index returns the dense within-hall index of the rack in [0, NumRacks).
// Fleet.GlobalIndex maps a rack to its fleet-wide shard index; everything
// that models a single machine (simulation, airflow, clock graph, analysis)
// keeps using the within-hall index.
func (r RackID) Index() int { return r.Row*ColsPerRow + r.Col }

// RackByIndex returns the hall-0 RackID for a dense index in [0, NumRacks).
// It panics on an out-of-range index (programmer error).
func RackByIndex(i int) RackID {
	if i < 0 || i >= NumRacks {
		panic(fmt.Sprintf("topology: rack index %d out of range", i))
	}
	return RackID{Row: i / ColsPerRow, Col: i % ColsPerRow}
}

// Code packs a valid rack identity into the fleet-wide uint16 wire code:
// high byte hall, low byte within-hall index. Numeric code order equals
// (hall, index) order, which is the fleet-wide shard order, so codes sort
// the same way merged scans do.
func (r RackID) Code() uint16 {
	return uint16(r.Hall)<<8 | uint16(r.Index())
}

// RackFromCode inverts Code. It errors on a low byte that is not a valid
// within-hall index (the hall byte is validated against a concrete Fleet by
// the caller, if it has one).
func RackFromCode(code uint16) (RackID, error) {
	idx := int(code & 0xFF)
	if idx >= NumRacks {
		return RackID{}, fmt.Errorf("topology: rack code %#04x has within-hall index %d out of range", code, idx)
	}
	r := RackByIndex(idx)
	r.Hall = int(code >> 8)
	return r, nil
}

// String renders the paper's (row, hex-column) notation, e.g. "(0,D)".
// Racks outside hall 0 carry a hall prefix, e.g. "h2(0,D)".
func (r RackID) String() string {
	if r.Hall != 0 {
		return fmt.Sprintf("h%d(%d,%c)", r.Hall, r.Row, hexDigit(r.Col))
	}
	return fmt.Sprintf("(%d,%c)", r.Row, hexDigit(r.Col))
}

func hexDigit(c int) byte {
	const digits = "0123456789ABCDEF"
	if c < 0 || c >= len(digits) {
		return '?'
	}
	return digits[c]
}

// ParseRackID parses the "(row,col)" notation, accepting hex column digits
// in either case, with an optional "h<hall>" prefix for fleet racks, e.g.
// "h2(1,4)".
func ParseRackID(s string) (RackID, error) {
	t := strings.TrimSpace(s)
	hall := 0
	if strings.HasPrefix(t, "h") || strings.HasPrefix(t, "H") {
		open := strings.IndexByte(t, '(')
		if open < 2 {
			return RackID{}, fmt.Errorf("topology: malformed rack id %q", s)
		}
		n := 0
		for _, c := range t[1:open] {
			if c < '0' || c > '9' {
				return RackID{}, fmt.Errorf("topology: bad hall in rack id %q", s)
			}
			n = n*10 + int(c-'0')
			if n >= MaxHalls {
				return RackID{}, fmt.Errorf("topology: hall out of range in rack id %q", s)
			}
		}
		hall = n
		t = t[open:]
	}
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	parts := strings.Split(t, ",")
	if len(parts) != 2 {
		return RackID{}, fmt.Errorf("topology: malformed rack id %q", s)
	}
	rowStr := strings.TrimSpace(parts[0])
	colStr := strings.TrimSpace(parts[1])
	if len(rowStr) != 1 || rowStr[0] < '0' || rowStr[0] > '2' {
		return RackID{}, fmt.Errorf("topology: bad row in rack id %q", s)
	}
	if len(colStr) != 1 {
		return RackID{}, fmt.Errorf("topology: bad column in rack id %q", s)
	}
	col := strings.IndexByte("0123456789ABCDEF", colStr[0])
	if col < 0 {
		col = strings.IndexByte("0123456789abcdef", colStr[0])
	}
	if col < 0 {
		return RackID{}, fmt.Errorf("topology: bad column in rack id %q", s)
	}
	return RackID{Row: int(rowStr[0] - '0'), Col: col, Hall: hall}, nil
}

// AllRacks returns every compute rack in dense-index order.
func AllRacks() []RackID {
	out := make([]RackID, NumRacks)
	for i := range out {
		out[i] = RackByIndex(i)
	}
	return out
}

// RowRacks returns the racks of one row in column order.
func RowRacks(row int) []RackID {
	if row < 0 || row >= Rows {
		panic(fmt.Sprintf("topology: row %d out of range", row))
	}
	out := make([]RackID, ColsPerRow)
	for c := range out {
		out[c] = RackID{Row: row, Col: c}
	}
	return out
}

// Fleet parameterizes a deployment as halls × racks-per-hall. The zero
// value means the paper's single 48-rack machine (1 hall × NumRacks), so
// existing call sites that never mention halls keep their exact behavior.
// Racks within a hall are the first Racks entries of the Mira floor in
// dense-index order; every hall has the same layout.
type Fleet struct {
	// Halls is the number of machine halls (1..MaxHalls); 0 means 1.
	Halls int
	// Racks is the number of racks per hall (1..NumRacks); 0 means NumRacks.
	Racks int
}

// Norm returns f with zero fields replaced by the single-machine defaults.
// It panics on out-of-range values (programmer/flag-validation error).
func (f Fleet) Norm() Fleet {
	if f.Halls == 0 {
		f.Halls = 1
	}
	if f.Racks == 0 {
		f.Racks = NumRacks
	}
	if f.Halls < 1 || f.Halls > MaxHalls || f.Racks < 1 || f.Racks > NumRacks {
		panic(fmt.Sprintf("topology: fleet %d halls × %d racks out of range", f.Halls, f.Racks))
	}
	return f
}

// NumRacks is the fleet-wide rack (and store shard) count.
func (f Fleet) NumRacks() int {
	f = f.Norm()
	return f.Halls * f.Racks
}

// Contains reports whether r is a rack of this fleet.
func (f Fleet) Contains(r RackID) bool {
	f = f.Norm()
	return r.Valid() && r.Hall < f.Halls && r.Index() < f.Racks
}

// GlobalIndex returns the fleet-wide dense shard index of r, in
// [0, f.NumRacks()), ordered hall-major. The caller must ensure
// f.Contains(r).
func (f Fleet) GlobalIndex(r RackID) int {
	f = f.Norm()
	return r.Hall*f.Racks + r.Index()
}

// RackAt inverts GlobalIndex. It panics on an out-of-range index.
func (f Fleet) RackAt(global int) RackID {
	f = f.Norm()
	if global < 0 || global >= f.Halls*f.Racks {
		panic(fmt.Sprintf("topology: fleet rack index %d out of range", global))
	}
	r := RackByIndex(global % f.Racks)
	r.Hall = global / f.Racks
	return r
}

// AllRacks returns every fleet rack in GlobalIndex order.
func (f Fleet) AllRacks() []RackID {
	f = f.Norm()
	out := make([]RackID, f.NumRacks())
	for i := range out {
		out[i] = f.RackAt(i)
	}
	return out
}

// DistanceFromRowEnd returns how many racks separate r from the nearest end
// of its row (0 for the outermost racks). The paper attributes reduced
// underfloor airflow — and hence drier, warmer ambient conditions — to the
// last three or four racks on either side of each row.
func (r RackID) DistanceFromRowEnd() int {
	left := r.Col
	right := ColsPerRow - 1 - r.Col
	if left < right {
		return left
	}
	return right
}

// Well-known racks called out by the paper.
var (
	// ClockRoot is rack (1,4): all racks receive their clock signal through
	// it, so its failure takes down the entire system.
	ClockRoot = RackID{Row: 1, Col: 4}
	// ClockRelay0A is rack (0,A), which relays the clock to rack (0,9).
	ClockRelay0A = RackID{Row: 0, Col: 0xA}
	// ClockLeaf09 is rack (0,9), which has no clock card of its own.
	ClockLeaf09 = RackID{Row: 0, Col: 9}
	// HumidityHotspot is rack (1,8), the localized humidity hotspot in the
	// center of row 1 and the rack with the most CMFs (14).
	HumidityHotspot = RackID{Row: 1, Col: 8}
	// QuietRack is rack (2,7), the rack with the fewest CMFs (5).
	QuietRack = RackID{Row: 2, Col: 7}
	// HotRack is rack (0,D), the rack with the highest power consumption.
	HotRack = RackID{Row: 0, Col: 0xD}
	// BusyRack is rack (0,A), the rack with the highest utilization.
	BusyRack = RackID{Row: 0, Col: 0xA}
)

// ClockGraph is the clock-signal distribution tree. Every rack except the
// root receives its clock through its parent; when a rack goes down, its
// entire clock subtree loses the signal and fails with it.
type ClockGraph struct {
	parent map[RackID]RackID
}

// NewClockGraph builds Mira's clock tree: rack (1,4) is the source for the
// whole system, and rack (0,9) is chained through rack (0,A) (paper §VI-A).
func NewClockGraph() *ClockGraph {
	g := &ClockGraph{parent: make(map[RackID]RackID)}
	for _, r := range AllRacks() {
		if r == ClockRoot {
			continue
		}
		g.parent[r] = ClockRoot
	}
	g.parent[ClockLeaf09] = ClockRelay0A
	return g
}

// Parent returns the clock parent of r; ok is false for the root.
func (g *ClockGraph) Parent(r RackID) (RackID, bool) {
	p, ok := g.parent[r]
	return p, ok
}

// Dependents returns every rack whose clock signal passes through r
// (directly or transitively), excluding r itself. For the root this is all
// other racks.
func (g *ClockGraph) Dependents(r RackID) []RackID {
	var out []RackID
	for _, cand := range AllRacks() {
		if cand == r {
			continue
		}
		if g.dependsOn(cand, r) {
			out = append(out, cand)
		}
	}
	return out
}

// dependsOn reports whether the clock path of rack a passes through b.
func (g *ClockGraph) dependsOn(a, b RackID) bool {
	for {
		p, ok := g.parent[a]
		if !ok {
			return false
		}
		if p == b {
			return true
		}
		a = p
	}
}

// FailureDomain returns the set of racks that go down when r fails: r plus
// its clock dependents.
func (g *ClockGraph) FailureDomain(r RackID) []RackID {
	return append([]RackID{r}, g.Dependents(r)...)
}
