package obs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsScrapeUnderLoad hammers one histogram from 16 goroutines while
// /metrics is scraped concurrently — the lock-free observation path and the
// exposition snapshot must not race (this test is what `make race` is for).
func TestMetricsScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mira_test_hammer_seconds", "hammered", []float64{0.001, 0.1, 1})
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()

	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-6)
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		status, body := get(t, srv.URL+"/metrics")
		if status != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, status)
		}
		if !strings.Contains(body, "mira_test_hammer_seconds_count") {
			t.Fatalf("scrape %d missing histogram:\n%s", i, body)
		}
	}
	wg.Wait()

	_, body := get(t, srv.URL+"/metrics")
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "mira_test_hammer_seconds_count "); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			if n != goroutines*perG {
				t.Errorf("final count = %d, want %d", n, goroutines*perG)
			}
			return
		}
	}
	t.Fatalf("no count line in final scrape:\n%s", body)
}

func TestHealthz(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()

	if status, body := get(t, srv.URL+"/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthy: status=%d body=%q", status, body)
	}
	r.SetHealth(fmt.Errorf("open store: %w", errors.New("corrupt segment")))
	status, body := get(t, srv.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Errorf("unhealthy status = %d, want 503", status)
	}
	if !strings.Contains(body, "corrupt segment") {
		t.Errorf("unhealthy body %q should carry the error", body)
	}
	r.SetHealth(nil)
	if status, _ := get(t, srv.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("recovered status = %d, want 200", status)
	}
}

func TestPprofAndIndex(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()

	if status, body := get(t, srv.URL+"/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status=%d", status)
	}
	if status, body := get(t, srv.URL+"/"); status != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status=%d body=%q", status, body)
	}
	if status, _ := get(t, srv.URL+"/nope"); status != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", status)
	}
}

// TestServe binds port 0 and scrapes the returned address end to end.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("mira_test_served_total", "x").Inc()
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	status, body := get(t, "http://"+addr+"/metrics")
	if status != http.StatusOK || !strings.Contains(body, "mira_test_served_total 1") {
		t.Errorf("served scrape: status=%d body=%q", status, body)
	}
}
