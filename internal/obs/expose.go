package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4): families in name order, children in
// label order, one HELP/TYPE pair per family, label values and help text
// escaped. Scrape hooks run first so scrape-time gauges are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runScrapes()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedChildren()
		if len(metrics) == 0 {
			continue // a vec with no children yet exposes nothing
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for i, m := range metrics {
			writeMetric(bw, f, values[i], m)
		}
	}
	return bw.Flush()
}

func writeMetric(bw *bufio.Writer, f *family, labelValue string, m any) {
	switch v := m.(type) {
	case *Counter:
		writeSample(bw, f.name, "", f.labelKey, labelValue, "", strconv.FormatUint(v.Value(), 10))
	case *Gauge:
		writeSample(bw, f.name, "", f.labelKey, labelValue, "", formatFloat(v.Value()))
	case *Histogram:
		buckets := v.snapshotBuckets()
		for i, b := range v.bounds {
			writeBucket(bw, f, labelValue, formatFloat(b), buckets[i], v.ex[i].Load())
		}
		writeBucket(bw, f, labelValue, "+Inf", buckets[len(buckets)-1],
			v.ex[len(buckets)-1].Load())
		writeSample(bw, f.name, "_sum", f.labelKey, labelValue, "", formatFloat(v.Sum()))
		writeSample(bw, f.name, "_count", f.labelKey, labelValue, "", strconv.FormatUint(v.Count(), 10))
	}
}

// writeBucket writes one _bucket line, appending an OpenMetrics-style
// exemplar suffix when the bucket has captured one. Histograms that never
// see ObserveExemplar render byte-identically to the plain format.
func writeBucket(bw *bufio.Writer, f *family, labelValue, le string, count uint64, ex *exemplar) {
	writeSampleNoNL(bw, f.name, "_bucket", f.labelKey, labelValue, le,
		strconv.FormatUint(count, 10))
	if ex != nil {
		bw.WriteString(" # {")
		bw.WriteString(exemplarKey)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(ex.trace))
		bw.WriteString(`"} `)
		bw.WriteString(formatFloat(ex.value))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatFloat(float64(ex.when.UnixNano())/1e9, 'f', 3, 64))
	}
	bw.WriteByte('\n')
}

// writeSample writes one exposition line. le is the bucket bound rendering
// for _bucket lines ("" otherwise).
func writeSample(bw *bufio.Writer, name, suffix, labelKey, labelValue, le, value string) {
	writeSampleNoNL(bw, name, suffix, labelKey, labelValue, le, value)
	bw.WriteByte('\n')
}

// writeSampleNoNL writes the sample without the trailing newline so
// _bucket lines can carry an exemplar suffix.
func writeSampleNoNL(bw *bufio.Writer, name, suffix, labelKey, labelValue, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labelKey != "" || le != "" {
		bw.WriteByte('{')
		if labelKey != "" {
			bw.WriteString(labelKey)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labelValue))
			bw.WriteByte('"')
			if le != "" {
				bw.WriteByte(',')
			}
		}
		if le != "" {
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
