package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// RunReport is a machine-readable snapshot of the registry at (typically)
// process exit — the seed for the repository's BENCH_*.json performance
// trajectories: counters and gauges keyed by series name, histograms with
// cumulative buckets. scripts/bench.sh embeds one next to the go-bench
// numbers so each PR leaves a comparable data point behind.
type RunReport struct {
	Schema      string                   `json:"schema"`
	GeneratedAt string                   `json:"generated_at"`
	Counters    map[string]uint64        `json:"counters"`
	Gauges      map[string]float64       `json:"gauges"`
	Histograms  map[string]HistogramSnap `json:"histograms"`
}

// HistogramSnap summarizes one histogram series.
type HistogramSnap struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []BucketSnap `json:"buckets"`
}

// BucketSnap is one cumulative bucket; LE is +Inf for the last bucket.
type BucketSnap struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// reportSchema versions the RunReport layout for downstream tooling.
const reportSchema = "mira-run-report/v1"

// Snapshot captures every registered series. Scrape hooks run first, so
// scrape-time gauges (tsdb footprint, shard skew) are fresh. Non-finite
// gauge values are dropped: the report must stay valid JSON.
func (r *Registry) Snapshot() RunReport {
	r.runScrapes()
	rep := RunReport{
		Schema:      reportSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Counters:    map[string]uint64{},
		Gauges:      map[string]float64{},
		Histograms:  map[string]HistogramSnap{},
	}
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedChildren()
		for i, m := range metrics {
			key := f.name
			if f.labelKey != "" {
				key = fmt.Sprintf("%s{%s=%q}", f.name, f.labelKey, values[i])
			}
			switch v := m.(type) {
			case *Counter:
				rep.Counters[key] = v.Value()
			case *Gauge:
				if val := v.Value(); !math.IsNaN(val) && !math.IsInf(val, 0) {
					rep.Gauges[key] = val
				}
			case *Histogram:
				snap := HistogramSnap{Count: v.Count(), Sum: v.Sum()}
				buckets := v.snapshotBuckets()
				for j, b := range v.bounds {
					snap.Buckets = append(snap.Buckets, BucketSnap{LE: b, Count: buckets[j]})
				}
				snap.Buckets = append(snap.Buckets, BucketSnap{LE: math.Inf(1), Count: buckets[len(buckets)-1]})
				rep.Histograms[key] = snap
			}
		}
	}
	return rep
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" (JSON has no
// infinity literal).
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// WriteReport writes the snapshot as indented JSON.
func (r *Registry) WriteReport(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: run report: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteReportFile writes the snapshot to path (0644, truncating).
func (r *Registry) WriteReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: run report: %w", err)
	}
	if err := r.WriteReport(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteRunReport snapshots the default registry to path.
func WriteRunReport(path string) error { return defaultRegistry.WriteReportFile(path) }
