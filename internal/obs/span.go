package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sync"
	"time"
)

// Trace spans: a span is a named, timed region of work ("tsdb.flush",
// "analysis.fig9"). Ending a span feeds the registry's
// mira_span_duration_seconds histogram (labeled by span name) and, when an
// event log is attached, appends one structured JSON line. Every span also
// belongs to a trace (see trace.go): it carries a 64-bit trace/span ID
// pair, links to its parent — a local span in the context, or a remote one
// extracted from an X-Mira-Trace header — and, when its trace is retained,
// lands in the /debug/traces ring.

// spanNameRE keeps span names label-safe and grep-able.
var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)

type spanCtxKey struct{}

// ActiveSpan is an in-flight span; call End exactly once.
type ActiveSpan struct {
	reg      *Registry
	name     string
	parent   string
	start    time.Time
	sc       SpanContext
	parentID SpanID
	tracked  bool // tracer accepted spanStarted; End must report back

	attrMu sync.Mutex
	attrs  [][2]string
}

// Span starts a span on the default registry. The returned context carries
// the span so nested spans record their parent in the event log.
func Span(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return defaultRegistry.Span(ctx, name)
}

// Span starts a span on this registry.
func (r *Registry) Span(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if !spanNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid span name %q", name))
	}
	s := &ActiveSpan{reg: r, name: name, start: time.Now()}
	if ctx == nil {
		ctx = context.Background()
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*ActiveSpan); ok && parent != nil {
		s.parent = parent.name
		s.sc.Trace = parent.sc.Trace
		s.sc.Sampled = parent.sc.Sampled
		s.parentID = parent.sc.Span
	} else if rsc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && rsc.Valid() {
		s.sc.Trace = rsc.Trace
		s.sc.Sampled = rsc.Sampled
		s.parentID = rsc.Span
	} else {
		s.sc.Trace = TraceID(newID())
		s.sc.Sampled = r.tr.sampleHead(s.sc.Trace)
	}
	s.sc.Span = SpanID(newID())
	s.tracked = r.tr.spanStarted(s.sc.Trace, s.sc.Sampled)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Context returns the span's propagation context; zero for a nil span.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value annotation shown in the /debug/traces tree
// (e.g. rows decoded, scan mode). Nil-safe; last write wins on render.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrMu.Lock()
	s.attrs = append(s.attrs, [2]string{key, value})
	s.attrMu.Unlock()
}

// End records the span's duration. Safe to call on a nil span (a no-op), so
// callers can End unconditionally after conditional starts.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start)
	s.reg.spanDurations().With(s.name).Observe(elapsed.Seconds())
	s.reg.logSpanEvent(s, elapsed)
	if !s.tracked {
		return
	}
	s.attrMu.Lock()
	attrs := s.attrs
	s.attrs = nil
	s.attrMu.Unlock()
	finalized, kept := s.reg.tr.spanEnded(s.sc.Trace, SpanRecord{
		Name:     s.name,
		ID:       s.sc.Span,
		Parent:   s.parentID,
		Start:    s.start,
		Duration: elapsed,
		Attrs:    attrs,
	})
	if finalized {
		s.reg.traceFinalized(kept)
	}
}

// spanDurations lazily registers the span histogram family.
func (r *Registry) spanDurations() *HistogramVec {
	return r.HistogramVec("mira_span_duration_seconds",
		"wall-clock duration of trace spans, labeled by span name", "span", nil)
}

// SetEventLog attaches a writer that receives one JSON line per completed
// span: {"ts","span","parent","seconds"}. Pass nil to detach. Writes are
// serialized; the writer does not need to be concurrency-safe.
func (r *Registry) SetEventLog(w io.Writer) {
	r.eventMu.Lock()
	r.eventLog = w
	r.eventMu.Unlock()
}

// SetEventLog attaches the span event log on the default registry.
func SetEventLog(w io.Writer) { defaultRegistry.SetEventLog(w) }

// spanEvent is the JSON schema of one event-log line.
type spanEvent struct {
	TS      string  `json:"ts"`
	Span    string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Seconds float64 `json:"seconds"`
	Trace   string  `json:"trace,omitempty"`
	SpanID  string  `json:"span_id,omitempty"`
}

func (r *Registry) logSpanEvent(s *ActiveSpan, elapsed time.Duration) {
	r.eventMu.Lock()
	defer r.eventMu.Unlock()
	if r.eventLog == nil {
		return
	}
	line, err := json.Marshal(spanEvent{
		TS:      s.start.UTC().Format(time.RFC3339Nano),
		Span:    s.name,
		Parent:  s.parent,
		Seconds: elapsed.Seconds(),
		Trace:   s.sc.Trace.String(),
		SpanID:  s.sc.Span.String(),
	})
	if err != nil {
		return // a span name is always marshalable; defensive only
	}
	r.eventLog.Write(append(line, '\n'))
}
