package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. Updates are single
// atomic adds, safe on the hottest paths (one per tsdb append).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta with a CAS loop.
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a lock-free fixed-bucket histogram: bucket bounds are
// declared at registration, so Observe is one binary search plus three
// atomic updates — no allocation, no locks, safe to hammer from any number
// of goroutines while /metrics is scraped.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	ex      []atomic.Pointer[exemplar] // one slot per bucket, incl. +Inf
}

// exemplarKey is the single label allowed on exemplars. One fixed key and
// one slot per bucket keeps exemplar cardinality bounded by construction:
// at most len(bounds)+1 exemplars per histogram, each carrying one trace
// ID. scripts/lint_metrics.go pins this.
const exemplarKey = "trace_id"

// exemplar links one histogram bucket to a captured trace.
type exemplar struct {
	value float64
	trace string
	when  time.Time
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		ex:     make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
}

// ObserveExemplar records one sample and, when trace is non-empty,
// remembers it as the bucket's exemplar — the `... # {trace_id="..."}`
// suffix on the exposition's _bucket line. Last writer wins per bucket;
// one atomic pointer swap over Observe's cost.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
	if trace != "" {
		h.ex[i].Store(&exemplar{value: v, trace: trace, when: time.Now()})
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// duration histograms: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshotBuckets returns cumulative bucket counts aligned with bounds plus
// the trailing +Inf bucket. The counts are read bucket by bucket without a
// global lock, so a snapshot taken mid-observation may briefly undercount
// the total relative to Count — Prometheus tolerates this by design.
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// addFloatBits atomically adds delta to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// DurationBuckets spans 10 µs .. 2 min — wide enough for a block seal on
// one end and a cold six-year figure pass on the other.
var DurationBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 15, 60, 120,
}

// ByteBuckets spans 1 KiB .. 1 GiB in powers of eight.
var ByteBuckets = []float64{
	1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28, 1 << 30,
}

// CounterVec is a family of counters keyed by one label's value.
type CounterVec struct{ f *family }

// With returns the child counter for the label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	return v.f.child(value, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges keyed by one label's value.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	return v.f.child(value, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms keyed by one label's value, all
// sharing the family's bucket bounds.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label value.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.child(value, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, "", nil)
	return f.metric(func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, "", nil)
	return f.metric(func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns the existing) unlabeled histogram. A nil
// buckets slice selects DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, "", normBuckets(buckets))
	return f.metric(func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labelKey, nil)}
}

// GaugeVec registers a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labelKey, nil)}
}

// HistogramVec registers a histogram family keyed by one label. A nil
// buckets slice selects DurationBuckets.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labelKey, normBuckets(buckets))}
}

// normBuckets defaults nil to DurationBuckets and verifies ascending order.
func normBuckets(b []float64) []float64 {
	if b == nil {
		return DurationBuckets
	}
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram buckets must be ascending")
	}
	return b
}

// Package-level constructors registering on the default registry — the form
// instrumentation uses for package-scoped metric variables.

// NewCounter registers an unlabeled counter on the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewGauge registers an unlabeled gauge on the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewHistogram registers an unlabeled histogram on the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets)
}

// NewCounterVec registers a labeled counter family on the default registry.
func NewCounterVec(name, help, labelKey string) *CounterVec {
	return defaultRegistry.CounterVec(name, help, labelKey)
}

// NewGaugeVec registers a labeled gauge family on the default registry.
func NewGaugeVec(name, help, labelKey string) *GaugeVec {
	return defaultRegistry.GaugeVec(name, help, labelKey)
}

// NewHistogramVec registers a labeled histogram family on the default
// registry.
func NewHistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	return defaultRegistry.HistogramVec(name, help, labelKey, buckets)
}
