package obs

// Distributed tracing: every span carries a 64-bit trace/span ID pair with
// parent linkage. Traces are head-sampled probabilistically at the root
// (the decision rides the trace ID, so every process sampling the same
// trace agrees) and tail-kept unconditionally when any span runs slow.
// Completed traces land in a bounded in-memory ring exposed at
// /debug/traces; everything else is discarded, so sampled-out fast
// requests cost two map operations and no retained memory.
//
// Context crosses process boundaries in the X-Mira-Trace header:
//
//	X-Mira-Trace: <16 hex trace ID>/<16 hex span ID>/<0|1 sampled>
//
// exactly 35 bytes. Anything else — truncated, oversized, bad hex, zero
// IDs — is ignored and the receiver starts a fresh root trace; a
// malformed header must never fail a request.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

func (t TraceID) String() string { return hex16(uint64(t)) }
func (s SpanID) String() string  { return hex16(uint64(s)) }

func hex16(v uint64) string {
	var b [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// TraceHeader is the HTTP header carrying trace context across the wire.
const TraceHeader = "X-Mira-Trace"

// traceHeaderLen is the exact length of a well-formed header value:
// 16 hex + "/" + 16 hex + "/" + one flag byte.
const traceHeaderLen = 35

// SpanContext is the propagated identity of a span: enough for a remote
// child to link back to its parent and to honor the sampling decision.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span. Zero IDs are
// reserved as "absent".
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// HeaderValue renders the context in X-Mira-Trace wire form.
func (sc SpanContext) HeaderValue() string {
	flag := "/0"
	if sc.Sampled {
		flag = "/1"
	}
	return sc.Trace.String() + "/" + sc.Span.String() + flag
}

// ParseTraceHeader parses an X-Mira-Trace value. Malformed input of any
// kind returns ok=false — never an error, never a panic — so a bad or
// hostile header degrades to a fresh root trace.
func ParseTraceHeader(v string) (SpanContext, bool) {
	if len(v) != traceHeaderLen || v[16] != '/' || v[33] != '/' {
		return SpanContext{}, false
	}
	tr, err := parseHex16(v[:16])
	if err != nil {
		return SpanContext{}, false
	}
	sp, err := parseHex16(v[17:33])
	if err != nil {
		return SpanContext{}, false
	}
	var sampled bool
	switch v[34] {
	case '0':
	case '1':
		sampled = true
	default:
		return SpanContext{}, false
	}
	sc := SpanContext{Trace: TraceID(tr), Span: SpanID(sp), Sampled: sampled}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// parseHex16 is a strict lowercase-or-uppercase hex parse of exactly 16
// digits; strconv.ParseUint would also do, but being explicit keeps the
// accepted grammar obvious (no signs, no "0x", no underscores).
func parseHex16(s string) (uint64, error) {
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, strconv.ErrSyntax
		}
		v = v<<4 | d
	}
	return v, nil
}

// remoteCtxKey carries a SpanContext extracted from an incoming header.
// It is distinct from spanCtxKey (a live local *ActiveSpan): a remote
// parent has no End to call here — it only seeds linkage and sampling.
type remoteCtxKey struct{}

// ContextWithRemoteSpan returns a context under which the next Span call
// becomes a child of the given remote span. Invalid contexts are dropped.
func ContextWithRemoteSpan(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// SpanContextFrom returns the context to propagate on an outgoing RPC:
// the active local span's, or the remote parent's when no local span has
// been started yet.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	if s, ok := ctx.Value(spanCtxKey{}).(*ActiveSpan); ok && s != nil {
		return s.sc, true
	}
	if sc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && sc.Valid() {
		return sc, true
	}
	return SpanContext{}, false
}

// SpanFromContext returns the active span, or nil. All *ActiveSpan
// methods are nil-safe, so callers may use the result unconditionally.
func SpanFromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*ActiveSpan)
	return s
}

// TracerConfig bounds the tracer. The zero value of each field selects
// its default; a SampleRatio of exactly 0 is honored (slow-only tracing)
// by passing NoSample.
type TracerConfig struct {
	// SampleRatio is the probability a new root trace is head-sampled.
	// 0 means the default (1.0: keep everything, the ring bounds cost).
	SampleRatio float64
	// NoSample disables head sampling entirely: only traces containing
	// a slow span are retained. Overrides SampleRatio.
	NoSample bool
	// SlowSpan retains any trace containing a span at least this slow,
	// regardless of the sampling decision. Default 100ms.
	SlowSpan time.Duration
	// MaxTraces bounds the completed-trace ring. Default 256.
	MaxTraces int
	// MaxSpans bounds spans retained per trace; excess spans still run
	// and record metrics but are counted as truncated. Default 512.
	MaxSpans int
}

const (
	defaultSlowSpan  = 100 * time.Millisecond
	defaultMaxTraces = 256
	defaultMaxSpans  = 512
)

func (c TracerConfig) withDefaults() TracerConfig {
	if c.NoSample || c.SampleRatio < 0 {
		c.SampleRatio = 0
	} else if c.SampleRatio == 0 || c.SampleRatio > 1 {
		c.SampleRatio = 1
	}
	if c.SlowSpan <= 0 {
		c.SlowSpan = defaultSlowSpan
	}
	if c.MaxTraces <= 0 {
		c.MaxTraces = defaultMaxTraces
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = defaultMaxSpans
	}
	return c
}

// SpanRecord is one completed span inside a retained trace.
type SpanRecord struct {
	Name     string
	ID       SpanID
	Parent   SpanID // zero for a process-local root
	Start    time.Time
	Duration time.Duration
	Attrs    [][2]string
}

// TraceRecord is one retained trace — or, for a trace that crossed
// processes, the fragment of it this process observed. The /debug/traces
// tree view merges fragments sharing a trace ID.
type TraceRecord struct {
	Trace     TraceID
	Sampled   bool // head-sampling decision
	Slow      bool // contained a span ≥ SlowSpan
	Truncated int  // spans dropped past MaxSpans
	Done      time.Time
	Spans     []SpanRecord
}

// traceBuf accumulates spans for one in-flight trace. A trace fragment
// completes when its open-span count returns to zero.
type traceBuf struct {
	sampled   bool
	slow      bool
	open      int
	truncated int
	spans     []SpanRecord
}

// tracer is the per-Registry trace collector. Unconfigured registries
// trace with defaults, so tests exercising spans need no setup.
type tracer struct {
	mu         sync.Mutex
	configured bool
	cfg        TracerConfig
	inflight   map[TraceID]*traceBuf
	ring       []TraceRecord // rotating; next is the oldest slot once full
	next       int
	seq        uint64 // total finalized+kept, for newest-first ordering
}

// maxInflightFactor bounds concurrently-open distinct traces relative to
// the ring size; beyond it new traces run untracked (metrics and the
// event log still see their spans).
const maxInflightFactor = 4

func (t *tracer) config() TracerConfig {
	if !t.configured {
		t.configured = true
		t.cfg = TracerConfig{}.withDefaults()
	}
	return t.cfg
}

// ConfigureTracer replaces the registry's tracing policy. Retained traces
// are kept; in-flight traces finish under the new bounds.
func (r *Registry) ConfigureTracer(cfg TracerConfig) {
	t := &r.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	t.configured = true
	t.cfg = cfg.withDefaults()
}

// ConfigureTracer configures the default registry's tracer.
func ConfigureTracer(cfg TracerConfig) { defaultRegistry.ConfigureTracer(cfg) }

// sampleHead decides head sampling for a new root trace. The decision is
// a pure function of the trace ID so that any process seeing the same
// trace (via propagation) agrees without coordination.
func (t *tracer) sampleHead(trace TraceID) bool {
	t.mu.Lock()
	ratio := t.config().SampleRatio
	t.mu.Unlock()
	if ratio >= 1 {
		return true
	}
	if ratio <= 0 {
		return false
	}
	// Trace IDs are splitmix64 outputs, uniform over uint64; the top 53
	// bits map to [0,1) exactly.
	return float64(uint64(trace)>>11)/(1<<53) < ratio
}

// spanStarted registers a span under its trace and reports whether the
// tracer will accept its End. Untracked spans (inflight cap exceeded)
// must not decrement open counts later, or a concurrent trace's
// bookkeeping would corrupt.
func (t *tracer) spanStarted(trace TraceID, sampled bool) bool {
	if trace == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cfg := t.config()
	if t.inflight == nil {
		t.inflight = make(map[TraceID]*traceBuf)
	}
	buf := t.inflight[trace]
	if buf == nil {
		if len(t.inflight) >= maxInflightFactor*cfg.MaxTraces {
			return false
		}
		buf = &traceBuf{sampled: sampled}
		t.inflight[trace] = buf
	}
	buf.open++
	return true
}

// spanEnded records a completed span; when it closes the last open span
// of its trace the fragment finalizes. Returns (finalized, kept).
func (t *tracer) spanEnded(trace TraceID, rec SpanRecord) (bool, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cfg := t.config()
	buf := t.inflight[trace]
	if buf == nil {
		return false, false
	}
	if len(buf.spans) < cfg.MaxSpans {
		buf.spans = append(buf.spans, rec)
	} else {
		buf.truncated++
	}
	if rec.Duration >= cfg.SlowSpan {
		buf.slow = true
	}
	buf.open--
	if buf.open > 0 {
		return false, false
	}
	delete(t.inflight, trace)
	if !buf.sampled && !buf.slow {
		return true, false
	}
	tr := TraceRecord{
		Trace:     trace,
		Sampled:   buf.sampled,
		Slow:      buf.slow,
		Truncated: buf.truncated,
		Done:      time.Now(),
		Spans:     buf.spans,
	}
	if len(t.ring) < cfg.MaxTraces {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
	}
	t.seq++
	return true, true
}

// snapshot returns retained traces newest-first. Span slices are owned by
// the ring and immutable after finalize, so sharing them is safe.
func (t *tracer) snapshot() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, len(t.ring))
	// Ring order: slots [next, len) then [0, next) oldest→newest while
	// rotating; before the first wrap next stays 0 and append order is
	// chronological. Emit newest first either way.
	for i := len(t.ring) - 1; i >= 0; i-- {
		idx := (t.next + i) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Traces returns the registry's retained traces, newest first.
func (r *Registry) Traces() []TraceRecord { return r.tr.snapshot() }

// Traces returns the default registry's retained traces, newest first.
func Traces() []TraceRecord { return defaultRegistry.Traces() }

// TraceByID returns every retained fragment of one trace, oldest first.
// A distributed trace finalizes independently per process, so a ring can
// hold several fragments sharing an ID.
func (r *Registry) TraceByID(id TraceID) []TraceRecord {
	all := r.tr.snapshot()
	var out []TraceRecord
	for i := len(all) - 1; i >= 0; i-- { // snapshot is newest-first
		if all[i].Trace == id {
			out = append(out, all[i])
		}
	}
	return out
}

// TraceByID returns the default registry's fragments for one trace.
func TraceByID(id TraceID) []TraceRecord { return defaultRegistry.TraceByID(id) }

// traceFinalized bumps the retention counters; they live on the metrics
// side of the registry, so increment outside the tracer lock.
func (r *Registry) traceFinalized(kept bool) {
	if kept {
		r.Counter("mira_trace_kept_total", "Completed traces retained in the ring.").Inc()
	} else {
		r.Counter("mira_trace_dropped_total", "Completed traces discarded by sampling.").Inc()
	}
}

// ID generation: splitmix64 over an atomic counter seeded from the OS
// entropy pool. Cheap (one atomic add + mixing), collision-resistant
// enough for trace correlation, and valid (non-zero) by construction.
var idCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idCounter.Store(uint64(time.Now().UnixNano()))
	}
}

func newID() uint64 {
	for {
		z := idCounter.Add(0x9E3779B97F4A7C15)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// mergeFragments flattens a set of fragments into one span list sorted by
// start time, for the single-trace tree view.
func mergeFragments(frags []TraceRecord) []SpanRecord {
	var spans []SpanRecord
	for _, f := range frags {
		spans = append(spans, f.Spans...)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans
}
