// Package obs is the zero-dependency observability layer of the digital
// twin: a concurrent metrics registry (counters, gauges, lock-free
// histograms with pre-declared buckets) with Prometheus text-format
// exposition, lightweight trace spans that feed duration histograms and an
// optional structured JSON event log, a small leveled logger, an HTTP
// surface (/metrics, /healthz, net/http/pprof), and a machine-readable
// RunReport snapshot that seeds the repository's BENCH_*.json perf
// trajectories.
//
// The paper's entire contribution is six years of monitoring a production
// system; this package makes the reproduction itself observable the same
// way: tsdb ingest/seal/flush, simulator throughput, and figure-generation
// latency all surface as mira_* series scrapeable while a run is live.
//
// Metric names are validated against the repository-wide namespace rule
// (mira_ prefix, lower-snake-case; see ValidMetricName) at registration,
// and `make lint` re-checks every registration site statically.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metricNameRE is the namespace rule: every series this repository exports
// is mira_-prefixed lower-snake-case. scripts/lint_metrics.go applies the
// same expression to registration sites at `make lint` time.
var metricNameRE = regexp.MustCompile(`^mira_[a-z_]+$`)

// ValidMetricName reports whether name satisfies the mira_ snake_case
// namespace rule (no digits, no doubled or trailing underscores).
func ValidMetricName(name string) bool {
	return metricNameRE.MatchString(name) &&
		!strings.Contains(name, "__") &&
		!strings.HasSuffix(name, "_")
}

// labelRE constrains label keys to Prometheus-legal identifiers.
var labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one exported metric name: either a single unlabeled metric or a
// set of children keyed by the value of one label.
type family struct {
	name     string
	help     string
	typ      metricType
	labelKey string    // "" for unlabeled metrics
	buckets  []float64 // histogram families only

	mu       sync.RWMutex
	single   any            // *Counter / *Gauge / *Histogram when labelKey == ""
	children map[string]any // label value -> metric when labelKey != ""
}

// Registry holds metric families, scrape hooks, the process health state,
// and the span event log. The zero value is not usable; call NewRegistry.
// All methods are safe for concurrent use; metric updates on registered
// counters, gauges, and histograms are lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	scrapes  []func()

	healthMu sync.RWMutex
	health   error

	eventMu  sync.Mutex
	eventLog interface{ Write(p []byte) (int, error) }

	tr tracer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level helpers and
// all built-in instrumentation (tsdb, sim, analysis, envdb) register into.
func Default() *Registry { return defaultRegistry }

// lookup returns the family for name, creating it on first registration.
// Re-registering an existing name with the same shape returns the existing
// family (first help wins); a type or label mismatch panics — that is a
// programming error, caught at init time.
func (r *Registry) lookup(name, help string, typ metricType, labelKey string, buckets []float64) *family {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the mira_[a-z_]+ snake_case namespace rule", name))
	}
	if labelKey != "" && !labelRE.MatchString(labelKey) {
		panic(fmt.Sprintf("obs: metric %s: invalid label key %q", name, labelKey))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || f.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v(label %q), was %v(label %q)",
				name, typ, labelKey, f.typ, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey, buckets: buckets}
	if labelKey != "" {
		f.children = make(map[string]any)
	}
	r.families[name] = f
	return f
}

// metric returns the family's unlabeled metric, creating it via mk once.
func (f *family) metric(mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = mk()
	}
	return f.single
}

// child returns the labeled child for value, creating it via mk once.
func (f *family) child(value string, mk func() any) any {
	f.mu.RLock()
	m, ok := f.children[value]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[value]; ok {
		return m
	}
	m = mk()
	f.children[value] = m
	return m
}

// sortedFamilies returns the families in name order for deterministic
// exposition and reports.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// sortedChildren returns (labelValue, metric) pairs in label order; for an
// unlabeled family it returns the single metric under the empty value.
func (f *family) sortedChildren() (values []string, metrics []any) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.labelKey == "" {
		if f.single == nil {
			return nil, nil
		}
		return []string{""}, []any{f.single}
	}
	values = make([]string, 0, len(f.children))
	for v := range f.children {
		values = append(values, v)
	}
	sort.Strings(values)
	metrics = make([]any, len(values))
	for i, v := range values {
		metrics[i] = f.children[v]
	}
	return values, metrics
}

// OnScrape registers a hook that runs before every exposition or snapshot —
// the place to refresh scrape-time gauges (e.g. tsdb footprint stats)
// without touching hot paths.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	r.scrapes = append(r.scrapes, f)
	r.mu.Unlock()
}

// runScrapes invokes the scrape hooks outside the registry lock.
func (r *Registry) runScrapes() {
	r.mu.RLock()
	hooks := make([]func(), len(r.scrapes))
	copy(hooks, r.scrapes)
	r.mu.RUnlock()
	for _, f := range hooks {
		f()
	}
}

// SetHealth records the process health: nil marks it healthy, non-nil (for
// example a tsdb open error wrapping ErrCorrupt) flips /healthz to 503 with
// the error text as the body.
func (r *Registry) SetHealth(err error) {
	r.healthMu.Lock()
	r.health = err
	r.healthMu.Unlock()
}

// Health returns the error recorded by SetHealth, nil when healthy.
func (r *Registry) Health() error {
	r.healthMu.RLock()
	defer r.healthMu.RUnlock()
	return r.health
}

// OnScrape registers a scrape hook on the default registry.
func OnScrape(f func()) { defaultRegistry.OnScrape(f) }

// SetHealth sets the default registry's health state.
func SetHealth(err error) { defaultRegistry.SetHealth(err) }
