package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger is a small leveled logger for the cmds' diagnostics: warnings from
// the watcher, flush errors, progress notes. It renders text (grep-able
// "TIME LEVEL component: msg" lines) or structured JSON, and counts every
// emitted line into mira_log_messages_total{level} on the default registry
// so noisy components show up on /metrics.
//
// Program *output* — figures, summaries, CSV — stays on stdout via fmt;
// the logger is for diagnostics and writes to stderr by default.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	json      bool
	min       Level
	component string
	exit      func(int) // os.Exit, replaceable in tests
}

// Level orders log severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// logLines counts emitted log lines by level across all loggers.
var logLines = NewCounterVec("mira_log_messages_total",
	"log lines emitted by the leveled logger, by level", "level")

// NewLogger creates a logger writing to w. format is "text" or "json"
// (anything else falls back to text); component names the program in every
// line. Lines below LevelInfo are suppressed; use SetLevel for debug runs.
func NewLogger(w io.Writer, format, component string) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{
		w:         w,
		json:      format == "json",
		min:       LevelInfo,
		component: component,
		exit:      os.Exit,
	}
}

// SetLevel lowers or raises the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// Debugf logs at debug level (suppressed by default).
func (l *Logger) Debugf(format string, args ...any) { l.emit(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.emit(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.emit(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.emit(LevelError, format, args...) }

// Fatalf logs at error level and exits with status 1.
func (l *Logger) Fatalf(format string, args ...any) {
	l.emit(LevelError, format, args...)
	l.exit(1)
}

type logLine struct {
	TS        string `json:"ts"`
	Level     string `json:"level"`
	Component string `json:"component,omitempty"`
	Msg       string `json:"msg"`
}

func (l *Logger) emit(lvl Level, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lvl < l.min {
		return
	}
	logLines.With(lvl.String()).Inc()
	msg := fmt.Sprintf(format, args...)
	ts := time.Now().UTC().Format(time.RFC3339)
	if l.json {
		line, err := json.Marshal(logLine{TS: ts, Level: lvl.String(), Component: l.component, Msg: msg})
		if err != nil {
			return
		}
		l.w.Write(append(line, '\n'))
		return
	}
	if l.component != "" {
		fmt.Fprintf(l.w, "%s %-5s %s: %s\n", ts, lvl, l.component, msg)
		return
	}
	fmt.Fprintf(l.w, "%s %-5s %s\n", ts, lvl, msg)
}
