package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpanFeedsHistogramAndEventLog(t *testing.T) {
	r := NewRegistry()
	var events bytes.Buffer
	r.SetEventLog(&events)
	defer r.SetEventLog(nil)

	ctx, outer := r.Span(context.Background(), "test.outer")
	_, inner := r.Span(ctx, "test.inner")
	inner.End()
	outer.End()

	if got := r.spanDurations().With("test.outer").Count(); got != 1 {
		t.Errorf("outer span observations = %d, want 1", got)
	}
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("event log has %d lines, want 2:\n%s", len(lines), events.String())
	}
	var ev struct {
		Span    string  `json:"span"`
		Parent  string  `json:"parent"`
		Seconds float64 `json:"seconds"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("event line is not JSON: %v", err)
	}
	if ev.Span != "test.inner" || ev.Parent != "test.outer" || ev.Seconds < 0 {
		t.Errorf("inner event = %+v, want span=test.inner parent=test.outer", ev)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *ActiveSpan
	s.End() // must not panic

	_, sp := Span(nil, "test.nilctx") // nil ctx is allowed
	sp.End()
}

func TestSpanBadNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid span name")
		}
	}()
	Span(context.Background(), "Bad Name")
}

func TestLoggerTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", "testcmd")
	l.Debugf("hidden")
	l.Infof("hello %d", 7)
	l.Warnf("careful")

	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted below min level")
	}
	for _, want := range []string{"info  testcmd: hello 7", "warn  testcmd: careful"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	l.SetLevel(LevelDebug)
	l.Debugf("now visible")
	if !strings.Contains(buf.String(), "debug testcmd: now visible") {
		t.Errorf("debug line missing after SetLevel:\n%s", buf.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", "testcmd")
	l.Errorf("bad %s", "thing")

	var line struct {
		TS        string `json:"ts"`
		Level     string `json:"level"`
		Component string `json:"component"`
		Msg       string `json:"msg"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if line.Level != "error" || line.Component != "testcmd" || line.Msg != "bad thing" || line.TS == "" {
		t.Errorf("json line = %+v", line)
	}
}

func TestLoggerFatalf(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", "testcmd")
	code := -1
	l.exit = func(c int) { code = c }
	l.Fatalf("boom")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "error testcmd: boom") {
		t.Errorf("fatal line missing:\n%s", buf.String())
	}
}

func TestRunReportSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("mira_test_report_total", "c").Add(5)
	r.GaugeVec("mira_test_report_depth", "g", "shard").With("07").Set(2.5)
	h := r.Histogram("mira_test_report_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	rep := r.Snapshot()
	if rep.Schema != "mira-run-report/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Counters["mira_test_report_total"] != 5 {
		t.Errorf("counters = %v", rep.Counters)
	}
	if rep.Gauges[`mira_test_report_depth{shard="07"}`] != 2.5 {
		t.Errorf("gauges = %v", rep.Gauges)
	}
	snap := rep.Histograms["mira_test_report_seconds"]
	if snap.Count != 2 || snap.Sum != 3.5 || len(snap.Buckets) != 2 {
		t.Fatalf("histogram snap = %+v", snap)
	}
	if snap.Buckets[0].Count != 1 || snap.Buckets[1].Count != 2 {
		t.Errorf("cumulative buckets = %+v", snap.Buckets)
	}

	// The +Inf bound must serialize as the string "+Inf", keeping the
	// report parseable by strict JSON tooling.
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"le": "+Inf"`) {
		t.Errorf("report lacks +Inf rendering:\n%s", buf.String())
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

func TestRunReportDropsNonFiniteGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mira_test_nan", "NaN until first refresh").Set(math.NaN())
	rep := r.Snapshot()
	if _, ok := rep.Gauges["mira_test_nan"]; ok {
		t.Error("NaN gauge leaked into the report")
	}
}
