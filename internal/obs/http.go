package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// HTTPHandler returns the observability surface:
//
//	/metrics       Prometheus text exposition of every registered family
//	/healthz       200 "ok" while healthy, 503 + error text after SetHealth
//	/debug/pprof/  the standard net/http/pprof profiles (heap, profile,
//	               goroutine, trace, ...)
//	/              a plain index of the above
//
// The pprof handlers are mounted explicitly so the surface works on this
// private mux without touching http.DefaultServeMux.
func (r *Registry) HTTPHandler() http.Handler { return r.buildMux() }

func (r *Registry) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := r.Health(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mira observability surface\n\n/metrics\n/healthz\n/debug/pprof/\n")
	})
	return mux
}

// HTTPServer is a running observability surface with optional extra
// handlers mounted on the same mux (see ServeWith). Unlike the fire-and-
// forget Serve, it supports graceful shutdown so services that accept
// remote writes can stop taking requests before flushing state to disk.
type HTTPServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with port 0).
func (s *HTTPServer) Addr() string { return s.addr }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline.
func (s *HTTPServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// ServeWith starts the observability surface on addr with extra routes:
// mount (if non-nil) is called with the mux before serving, so callers can
// add endpoints — e.g. the telemetrynet ingest/query API — alongside
// /metrics, /healthz, and pprof on one listener. The server runs in a
// background goroutine until Shutdown.
func (r *Registry) ServeWith(addr string, mount func(mux *http.ServeMux)) (*HTTPServer, error) {
	mux := r.buildMux()
	if mount != nil {
		mount(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &HTTPServer{srv: srv, addr: ln.Addr().String()}, nil
}

// Serve starts the observability surface on addr (":8080", "127.0.0.1:0",
// ...) in a background goroutine and returns the bound address — useful
// with port 0. The listener lives for the rest of the process; cmds that
// need graceful shutdown use ServeWith instead.
func (r *Registry) Serve(addr string) (string, error) {
	s, err := r.ServeWith(addr, nil)
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}

// Serve starts the default registry's surface on addr.
func Serve(addr string) (string, error) { return defaultRegistry.Serve(addr) }

// ServeWith starts the default registry's surface on addr with extra
// routes mounted on the same mux.
func ServeWith(addr string, mount func(mux *http.ServeMux)) (*HTTPServer, error) {
	return defaultRegistry.ServeWith(addr, mount)
}
