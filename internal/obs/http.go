package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// HTTPHandler returns the observability surface:
//
//	/metrics        Prometheus text exposition of every registered family
//	/healthz        200 "ok" while healthy, 503 + error text after SetHealth
//	/debug/traces   JSON list of retained traces, newest first;
//	                /debug/traces/<16-hex id> renders one trace as a tree
//	/debug/pprof/   the standard net/http/pprof profiles (heap, profile,
//	                goroutine, trace, ...)
//	/               a plain index of the above
//
// The pprof handlers are mounted explicitly so the surface works on this
// private mux without touching http.DefaultServeMux.
func (r *Registry) HTTPHandler() http.Handler { return r.buildMux() }

func (r *Registry) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := r.Health(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/traces", r.handleTraceList)
	mux.HandleFunc("/debug/traces/", r.handleTraceTree)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mira observability surface\n\n/metrics\n/healthz\n/debug/traces\n/debug/pprof/\n")
	})
	return mux
}

// traceSummary is one /debug/traces list entry. Fragments of the same
// distributed trace are merged before summarizing.
type traceSummary struct {
	Trace     string  `json:"trace"`
	Root      string  `json:"root"`
	Spans     int     `json:"spans"`
	Truncated int     `json:"truncated,omitempty"`
	Start     string  `json:"start"`
	Seconds   float64 `json:"seconds"`
	Sampled   bool    `json:"sampled"`
	Slow      bool    `json:"slow"`
}

func (r *Registry) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	all := r.Traces()
	// Merge fragments sharing a trace ID, preserving newest-first order
	// of first appearance.
	byID := make(map[TraceID]*traceSummary)
	order := make([]TraceID, 0, len(all))
	bounds := make(map[TraceID][2]time.Time)
	for _, tr := range all {
		s := byID[tr.Trace]
		if s == nil {
			s = &traceSummary{Trace: tr.Trace.String()}
			byID[tr.Trace] = s
			order = append(order, tr.Trace)
		}
		s.Spans += len(tr.Spans)
		s.Truncated += tr.Truncated
		s.Sampled = s.Sampled || tr.Sampled
		s.Slow = s.Slow || tr.Slow
		for _, sp := range tr.Spans {
			b := bounds[tr.Trace]
			end := sp.Start.Add(sp.Duration)
			if b[0].IsZero() || sp.Start.Before(b[0]) {
				b[0] = sp.Start
			}
			if end.After(b[1]) {
				b[1] = end
			}
			bounds[tr.Trace] = b
		}
	}
	out := make([]traceSummary, 0, len(order))
	for _, id := range order {
		s := byID[id]
		b := bounds[id]
		spans := mergeFragments(r.TraceByID(id))
		if root := rootSpan(spans); root != nil {
			s.Root = root.Name
		}
		if !b[0].IsZero() {
			s.Start = b[0].UTC().Format(time.RFC3339Nano)
			s.Seconds = b[1].Sub(b[0]).Seconds()
		}
		out = append(out, *s)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func (r *Registry) handleTraceTree(w http.ResponseWriter, req *http.Request) {
	idHex := strings.TrimPrefix(req.URL.Path, "/debug/traces/")
	if len(idHex) != 16 {
		http.Error(w, "trace ID must be 16 hex digits", http.StatusBadRequest)
		return
	}
	v, err := parseHex16(idHex)
	if err != nil || v == 0 {
		http.Error(w, "trace ID must be 16 hex digits", http.StatusBadRequest)
		return
	}
	frags := r.TraceByID(TraceID(v))
	if len(frags) == 0 {
		http.NotFound(w, req)
		return
	}
	spans := mergeFragments(frags)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "trace %s: %d spans across %d fragment(s)\n",
		TraceID(v), len(spans), len(frags))
	writeTraceTree(w, spans)
}

// rootSpan picks the tree root: a span with no parent, else the earliest
// span whose parent is not retained (a remote-parented fragment).
func rootSpan(spans []SpanRecord) *SpanRecord {
	have := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		have[sp.ID] = true
	}
	for i := range spans {
		if spans[i].Parent == 0 {
			return &spans[i]
		}
	}
	for i := range spans {
		if !have[spans[i].Parent] {
			return &spans[i]
		}
	}
	return nil
}

// writeTraceTree renders spans as an indented tree, children under their
// parents in start order. Spans whose parent is absent (remote, or
// truncated away) surface as top-level nodes.
func writeTraceTree(w io.Writer, spans []SpanRecord) {
	have := make(map[SpanID]bool, len(spans))
	children := make(map[SpanID][]int)
	for _, sp := range spans {
		have[sp.ID] = true
	}
	var roots []int
	for i, sp := range spans {
		if sp.Parent != 0 && have[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var emit func(i, depth int)
	emit = func(i, depth int) {
		sp := spans[i]
		fmt.Fprintf(w, "%s%s %.6fs", strings.Repeat("  ", depth), sp.Name, sp.Duration.Seconds())
		if depth == 0 && sp.Parent != 0 {
			fmt.Fprintf(w, " (remote parent %s)", sp.Parent)
		}
		for _, kv := range sp.Attrs {
			fmt.Fprintf(w, " %s=%s", kv[0], kv[1])
		}
		fmt.Fprintln(w)
		for _, c := range children[sp.ID] {
			emit(c, depth+1)
		}
	}
	for _, i := range roots {
		emit(i, 0)
	}
}

// HTTPServer is a running observability surface with optional extra
// handlers mounted on the same mux (see ServeWith). Unlike the fire-and-
// forget Serve, it supports graceful shutdown so services that accept
// remote writes can stop taking requests before flushing state to disk.
type HTTPServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with port 0).
func (s *HTTPServer) Addr() string { return s.addr }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline.
func (s *HTTPServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// ServeWith starts the observability surface on addr with extra routes:
// mount (if non-nil) is called with the mux before serving, so callers can
// add endpoints — e.g. the telemetrynet ingest/query API — alongside
// /metrics, /healthz, and pprof on one listener. The server runs in a
// background goroutine until Shutdown.
func (r *Registry) ServeWith(addr string, mount func(mux *http.ServeMux)) (*HTTPServer, error) {
	mux := r.buildMux()
	if mount != nil {
		mount(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &HTTPServer{srv: srv, addr: ln.Addr().String()}, nil
}

// Serve starts the observability surface on addr (":8080", "127.0.0.1:0",
// ...) in a background goroutine and returns the bound address — useful
// with port 0. The listener lives for the rest of the process; cmds that
// need graceful shutdown use ServeWith instead.
func (r *Registry) Serve(addr string) (string, error) {
	s, err := r.ServeWith(addr, nil)
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}

// Serve starts the default registry's surface on addr.
func Serve(addr string) (string, error) { return defaultRegistry.Serve(addr) }

// ServeWith starts the default registry's surface on addr with extra
// routes mounted on the same mux.
func ServeWith(addr string, mount func(mux *http.ServeMux)) (*HTTPServer, error) {
	return defaultRegistry.ServeWith(addr, mount)
}
