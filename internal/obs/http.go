package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// HTTPHandler returns the observability surface:
//
//	/metrics       Prometheus text exposition of every registered family
//	/healthz       200 "ok" while healthy, 503 + error text after SetHealth
//	/debug/pprof/  the standard net/http/pprof profiles (heap, profile,
//	               goroutine, trace, ...)
//	/              a plain index of the above
//
// The pprof handlers are mounted explicitly so the surface works on this
// private mux without touching http.DefaultServeMux.
func (r *Registry) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := r.Health(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mira observability surface\n\n/metrics\n/healthz\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the observability surface on addr (":8080", "127.0.0.1:0",
// ...) in a background goroutine and returns the bound address — useful
// with port 0. The listener lives for the rest of the process; cmds exit by
// process termination, so there is no Shutdown plumbing.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.HTTPHandler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts the default registry's surface on addr.
func Serve(addr string) (string, error) { return defaultRegistry.Serve(addr) }
