package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestGoldenExposition pins the Prometheus text format byte for byte:
// family ordering, HELP/TYPE lines, cumulative histogram buckets, and
// label escaping all live in this golden string.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mira_test_events_total", "events seen").Add(3)
	r.GaugeVec("mira_test_temp", `temp with \slash`, "rack").With(`r"1\x`).Set(1.5)
	h := r.Histogram("mira_test_dur_seconds", "durations", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.5) // equal to a bound counts inside that bucket
	h.Observe(2)

	want := strings.Join([]string{
		"# HELP mira_test_dur_seconds durations",
		"# TYPE mira_test_dur_seconds histogram",
		`mira_test_dur_seconds_bucket{le="0.5"} 2`,
		`mira_test_dur_seconds_bucket{le="1"} 2`,
		`mira_test_dur_seconds_bucket{le="+Inf"} 3`,
		"mira_test_dur_seconds_sum 2.75",
		"mira_test_dur_seconds_count 3",
		"# HELP mira_test_events_total events seen",
		"# TYPE mira_test_events_total counter",
		"mira_test_events_total 3",
		`# HELP mira_test_temp temp with \\slash`,
		"# TYPE mira_test_temp gauge",
		`mira_test_temp{rack="r\"1\\x"} 1.5`,
		"",
	}, "\n")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestEmptyVecExposesNothing(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("mira_test_unused_total", "never incremented", "op")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty vec produced output:\n%s", buf.String())
	}
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"mira_tsdb_append_total": true,
		"mira_a":                 true,
		"tsdb_append_total":      false, // missing prefix
		"mira_Append":            false, // upper case
		"mira_a__b":              false, // doubled underscore
		"mira_a_":                false, // trailing underscore
		"mira_a1":                false, // digits are reserved for label values
		"":                       false,
	} {
		if got := ValidMetricName(name); got != want {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mira_test_dup", "first help wins")

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Counter("bad_name", "x") })
	mustPanic("type mismatch", func() { r.Gauge("mira_test_dup", "x") })
	mustPanic("label mismatch", func() { r.CounterVec("mira_test_dup", "x", "op") })
	mustPanic("bad label key", func() { r.CounterVec("mira_test_lbl", "x", "Op") })
	mustPanic("unsorted buckets", func() { r.Histogram("mira_test_unsorted", "x", []float64{2, 1}) })
}

// TestReRegistrationSharesState verifies that registering the same name
// twice returns the same underlying metric — what lets ExposeGauges be
// called repeatedly against one registry.
func TestReRegistrationSharesState(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mira_test_shared_total", "a")
	b := r.Counter("mira_test_shared_total", "ignored; first help wins")
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Errorf("shared counter = %d, want 3", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Errorf("gauge = %v, want 1.0", got)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mira_test_default_seconds", "x", nil)
	h.Observe(0.3)
	if got, want := len(h.bounds), len(DurationBuckets); got != want {
		t.Fatalf("default bucket count = %d, want %d", got, want)
	}
	if h.Count() != 1 || h.Sum() != 0.3 {
		t.Errorf("count=%d sum=%v, want 1 and 0.3", h.Count(), h.Sum())
	}
}

func TestOnScrapeRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mira_test_depth", "refreshed at scrape time")
	depth := 7.0
	r.OnScrape(func() { g.Set(depth) })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mira_test_depth 7") {
		t.Errorf("scrape hook did not run:\n%s", buf.String())
	}
	depth = 9
	if rep := r.Snapshot(); rep.Gauges["mira_test_depth"] != 9 {
		t.Errorf("snapshot gauge = %v, want 9", rep.Gauges["mira_test_depth"])
	}
}
