package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceHeader(t *testing.T) {
	valid := SpanContext{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef, Sampled: true}
	cases := []struct {
		name string
		in   string
		want SpanContext
		ok   bool
	}{
		{"valid sampled", valid.HeaderValue(), valid, true},
		{"valid unsampled", "deadbeefcafef00d/0123456789abcdef/0",
			SpanContext{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef}, true},
		{"uppercase hex", "DEADBEEFCAFEF00D/0123456789ABCDEF/1", valid, true},
		{"empty", "", SpanContext{}, false},
		{"truncated", "deadbeefcafef00d/0123456789abcdef", SpanContext{}, false},
		{"oversized", "deadbeefcafef00d/0123456789abcdef/11", SpanContext{}, false},
		{"bad separator", "deadbeefcafef00d.0123456789abcdef/1", SpanContext{}, false},
		{"bad hex trace", "xeadbeefcafef00d/0123456789abcdef/1", SpanContext{}, false},
		{"bad hex span", "deadbeefcafef00d/x123456789abcdef/1", SpanContext{}, false},
		{"signed digit", "+eadbeefcafef00d/0123456789abcdef/1", SpanContext{}, false},
		{"bad flag", "deadbeefcafef00d/0123456789abcdef/2", SpanContext{}, false},
		{"zero trace", "0000000000000000/0123456789abcdef/1", SpanContext{}, false},
		{"zero span", "deadbeefcafef00d/0000000000000000/1", SpanContext{}, false},
		{"garbage", strings.Repeat("\xff", 35), SpanContext{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseTraceHeader(tc.in)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseTraceHeader(%q) = %+v, %v; want %+v, %v", tc.in, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		sc := SpanContext{Trace: TraceID(newID()), Span: SpanID(newID()), Sampled: i%2 == 0}
		v := sc.HeaderValue()
		if len(v) != traceHeaderLen {
			t.Fatalf("HeaderValue %q: length %d, want %d", v, len(v), traceHeaderLen)
		}
		got, ok := ParseTraceHeader(v)
		if !ok || got != sc {
			t.Fatalf("roundtrip %+v -> %q -> %+v, %v", sc, v, got, ok)
		}
	}
}

func TestSpanParentLinkage(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{})
	ctx, root := r.Span(context.Background(), "test.root")
	_, child := r.Span(ctx, "test.child")
	if child.Context().Trace != root.Context().Trace {
		t.Fatalf("child trace %s != root trace %s", child.Context().Trace, root.Context().Trace)
	}
	if child.parentID != root.Context().Span {
		t.Fatalf("child parent %s != root span %s", child.parentID, root.Context().Span)
	}
	child.End()
	if got := r.Traces(); len(got) != 0 {
		t.Fatalf("trace finalized with root still open: %d ring entries", len(got))
	}
	root.End()
	frags := r.TraceByID(root.Context().Trace)
	if len(frags) != 1 || len(frags[0].Spans) != 2 {
		t.Fatalf("want one fragment with 2 spans, got %+v", frags)
	}
}

func TestRemoteParentLinkage(t *testing.T) {
	r := NewRegistry()
	remote := SpanContext{Trace: TraceID(newID()), Span: SpanID(newID()), Sampled: true}
	ctx := ContextWithRemoteSpan(context.Background(), remote)
	_, s := r.Span(ctx, "test.handler")
	if s.Context().Trace != remote.Trace {
		t.Fatalf("span trace %s, want remote trace %s", s.Context().Trace, remote.Trace)
	}
	if s.parentID != remote.Span {
		t.Fatalf("span parent %s, want remote span %s", s.parentID, remote.Span)
	}
	if !s.Context().Sampled {
		t.Fatal("span did not inherit remote sampled flag")
	}
	s.End()
	if frags := r.TraceByID(remote.Trace); len(frags) != 1 {
		t.Fatalf("want 1 fragment for remote-parented trace, got %d", len(frags))
	}
}

func TestSampledOutFastSpansAddNoRingEntries(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{NoSample: true, SlowSpan: time.Hour})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ctx, root := r.Span(context.Background(), "test.fast")
				_, child := r.Span(ctx, "test.fast_child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Traces(); len(got) != 0 {
		t.Fatalf("sampled-out fast traces retained %d ring entries, want 0", len(got))
	}
	if n := len(r.tr.inflight); n != 0 {
		t.Fatalf("%d traces leaked in the inflight map", n)
	}
}

func TestSlowTracesAlwaysKept(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{NoSample: true, SlowSpan: time.Nanosecond})
	_, s := r.Span(context.Background(), "test.slow")
	time.Sleep(time.Microsecond)
	s.End()
	frags := r.TraceByID(s.Context().Trace)
	if len(frags) != 1 || !frags[0].Slow {
		t.Fatalf("slow trace not retained: %+v", frags)
	}
	if frags[0].Sampled {
		t.Fatal("NoSample trace reported head-sampled")
	}
}

func TestRingBoundedAndNewestFirst(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{MaxTraces: 4})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		_, s := r.Span(context.Background(), "test.ring")
		ids = append(ids, s.Context().Trace)
		s.End()
	}
	got := r.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	for i, tr := range got {
		if want := ids[len(ids)-1-i]; tr.Trace != want {
			t.Fatalf("ring[%d] = %s, want %s (newest first)", i, tr.Trace, want)
		}
	}
}

func TestMaxSpansTruncation(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{MaxSpans: 2})
	ctx, root := r.Span(context.Background(), "test.trunc")
	for i := 0; i < 5; i++ {
		_, c := r.Span(ctx, "test.trunc_child")
		c.End()
	}
	root.End()
	frags := r.TraceByID(root.Context().Trace)
	if len(frags) != 1 {
		t.Fatalf("want 1 fragment, got %d", len(frags))
	}
	if len(frags[0].Spans) != 2 || frags[0].Truncated != 4 {
		t.Fatalf("got %d spans, %d truncated; want 2 spans, 4 truncated",
			len(frags[0].Spans), frags[0].Truncated)
	}
}

func TestDebugTracesEndpoints(t *testing.T) {
	r := NewRegistry()
	r.ConfigureTracer(TracerConfig{})
	ctx, root := r.Span(context.Background(), "test.request")
	_, child := r.Span(ctx, "test.scan")
	child.SetAttr("rows", "42")
	child.End()
	root.End()
	h := r.HTTPHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces: status %d", rec.Code)
	}
	var list []struct {
		Trace string `json:"trace"`
		Root  string `json:"root"`
		Spans int    `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("/debug/traces: bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(list) != 1 || list[0].Root != "test.request" || list[0].Spans != 2 {
		t.Fatalf("/debug/traces: got %+v", list)
	}
	if list[0].Trace != root.Context().Trace.String() {
		t.Fatalf("/debug/traces: trace %s, want %s", list[0].Trace, root.Context().Trace)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+list[0].Trace, nil))
	if rec.Code != 200 {
		t.Fatalf("tree view: status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "test.request") || !strings.Contains(body, "  test.scan") {
		t.Fatalf("tree view missing nested spans:\n%s", body)
	}
	if !strings.Contains(body, "rows=42") {
		t.Fatalf("tree view missing span attrs:\n%s", body)
	}

	for path, want := range map[string]int{
		"/debug/traces/zz":               400,
		"/debug/traces/0000000000000000": 400,
		"/debug/traces/ffffffffffffffff": 404,
	} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != want {
			t.Fatalf("%s: status %d, want %d", path, rec.Code, want)
		}
	}
}

func TestHistogramExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mira_test_exemplar_seconds", "test", []float64{0.1, 1})
	h.Observe(0.05)
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "#") && strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("exemplar rendered before any was recorded:\n%s", buf.String())
	}
	h.ObserveExemplar(0.5, "deadbeefcafef00d")
	buf.Reset()
	r.WritePrometheus(&buf)
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, ` # {trace_id="deadbeefcafef00d"} 0.5 `) {
			found = true
			if !strings.Contains(line, `le="1"`) {
				t.Fatalf("exemplar on wrong bucket: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("exemplar not rendered:\n%s", buf.String())
	}
}

func FuzzParseTraceHeader(f *testing.F) {
	f.Add("deadbeefcafef00d/0123456789abcdef/1")
	f.Add("deadbeefcafef00d/0123456789abcdef/0")
	f.Add("DEADBEEFCAFEF00D/0123456789ABCDEF/1")
	f.Add("")
	f.Add("deadbeefcafef00d/0123456789abcdef")
	f.Add("deadbeefcafef00d/0123456789abcdef/11")
	f.Add("0000000000000000/0000000000000000/1")
	f.Add(strings.Repeat("/", 35))
	f.Add(strings.Repeat("f", 35))
	f.Fuzz(func(t *testing.T, v string) {
		sc, ok := ParseTraceHeader(v)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected input %q returned non-zero context %+v", v, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted input %q yielded invalid context %+v", v, sc)
		}
		// Accepted headers must survive a render/parse round trip.
		re, ok2 := ParseTraceHeader(sc.HeaderValue())
		if !ok2 || re != sc {
			t.Fatalf("roundtrip of %q: %+v -> %+v (ok=%v)", v, sc, re, ok2)
		}
	})
}
