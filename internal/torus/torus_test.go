package torus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mira/internal/topology"
)

func TestDimensionsConsistent(t *testing.T) {
	if TotalNodes() != topology.TotalNodes {
		t.Errorf("torus nodes = %d, topology nodes = %d", TotalNodes(), topology.TotalNodes)
	}
	// Midplane grid must tile the node torus exactly.
	for i := 0; i < 4; i++ {
		if NodeDims[i]%MidplaneBlock[i] != 0 {
			t.Errorf("dim %d: %d not divisible by %d", i, NodeDims[i], MidplaneBlock[i])
		}
		if NodeDims[i]/MidplaneBlock[i] != MidplaneDims[i] {
			t.Errorf("dim %d: grid %d != %d/%d", i, MidplaneDims[i], NodeDims[i], MidplaneBlock[i])
		}
	}
	if NodeDims[4] != MidplaneBlock[4] {
		t.Error("E dimension should be fully inside a midplane")
	}
	grid := 1
	for _, d := range MidplaneDims {
		grid *= d
	}
	if grid != topology.NumMidplanes {
		t.Errorf("midplane grid = %d, want %d", grid, topology.NumMidplanes)
	}
	// A midplane block holds exactly 512 nodes.
	block := 1
	for _, d := range MidplaneBlock {
		block *= d
	}
	if block != topology.NodesPerMidplane {
		t.Errorf("midplane block = %d nodes, want %d", block, topology.NodesPerMidplane)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	f := func(raw uint) bool {
		m := int(raw % uint(topology.NumMidplanes))
		c := MidplaneCoord(m)
		return c.Valid() && MidplaneIndex(c) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"index out of range": func() { MidplaneCoord(96) },
		"invalid coord":      func() { MidplaneIndex(Coord{A: 5}) },
		"bad anchor":         func() { ContiguousBlock(Coord{A: -1}, 4) },
		"bad block size":     func() { ContiguousBlock(Coord{}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHopDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := rng.Intn(topology.NumMidplanes)
		b := rng.Intn(topology.NumMidplanes)
		c := rng.Intn(topology.NumMidplanes)
		dab, dba := HopDistance(a, b), HopDistance(b, a)
		if dab != dba {
			t.Fatalf("asymmetric distance: %d vs %d", dab, dba)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity violated: d(%d,%d)=%d", a, b, dab)
		}
		if HopDistance(a, c) > dab+HopDistance(b, c) {
			t.Fatalf("triangle inequality violated for %d %d %d", a, b, c)
		}
	}
}

func TestWrapAround(t *testing.T) {
	// Opposite ends of the D ring (size 4) are 1 hop via wrap... size 4 →
	// max wrap distance 2; ends 0 and 3 are 1 apart.
	a := MidplaneIndex(Coord{D: 0})
	b := MidplaneIndex(Coord{D: 3})
	if d := HopDistance(a, b); d != 1 {
		t.Errorf("wrap distance 0..3 on a ring of 4 = %d, want 1", d)
	}
	c := MidplaneIndex(Coord{D: 2})
	if d := HopDistance(a, c); d != 2 {
		t.Errorf("distance 0..2 on a ring of 4 = %d, want 2", d)
	}
}

func TestDiameter(t *testing.T) {
	// Ring radii: 1 + 1 + 2 + 2 = 6.
	if d := Diameter(); d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
}

func TestContiguousBeatsRandomPlacement(t *testing.T) {
	// The torus design argument: a contiguous partition has far fewer mean
	// hops than scattering the same job across the machine.
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{4, 8, 16, 32} {
		block := ContiguousBlock(Coord{}, k)
		if len(block) != k {
			t.Fatalf("block size = %d, want %d", len(block), k)
		}
		seen := map[int]bool{}
		for _, m := range block {
			if seen[m] {
				t.Fatalf("duplicate midplane %d in block", m)
			}
			seen[m] = true
		}
		contiguous := MeanPairwiseHops(block)
		var randomMean float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(topology.NumMidplanes)[:k]
			randomMean += MeanPairwiseHops(perm)
		}
		randomMean /= trials
		if contiguous >= randomMean {
			t.Errorf("k=%d: contiguous %.2f should beat random %.2f hops", k, contiguous, randomMean)
		}
	}
}

func TestMeanPairwiseHopsEdge(t *testing.T) {
	if MeanPairwiseHops(nil) != 0 || MeanPairwiseHops([]int{5}) != 0 {
		t.Error("degenerate sets should have 0 mean hops")
	}
}

func TestContiguousBlockAnchored(t *testing.T) {
	// An anchored block wraps correctly and still has k members.
	block := ContiguousBlock(Coord{A: 1, B: 2, C: 3, D: 3}, 96)
	if len(block) != 96 {
		t.Fatalf("full-machine block = %d", len(block))
	}
	seen := map[int]bool{}
	for _, m := range block {
		seen[m] = true
	}
	if len(seen) != 96 {
		t.Error("full block should cover every midplane once")
	}
}

func TestLinkCount(t *testing.T) {
	// Rings: A (size 2): 48 lines × 1 link; B (3): 32 × 3; C (4): 24 × 4;
	// D (4): 24 × 4 → 48 + 96 + 96 + 96 = 336.
	if got := LinkCount(); got != 336 {
		t.Errorf("LinkCount = %d, want 336", got)
	}
}

func TestCoordString(t *testing.T) {
	if s := (Coord{1, 2, 3, 0}).String(); s != "<1,2,3,0>" {
		t.Errorf("Coord.String = %q", s)
	}
}
