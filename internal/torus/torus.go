// Package torus models Mira's IBM 5D torus interconnect (paper §II: the
// system is "connected throughout by IBM 5D torus interconnect with two
// GB/s chip-to-chip linkage, which reduces communication latency by
// minimizing the average number of hops between nodes").
//
// Mira's node torus is 8×12×16×16×2 (= 49,152 nodes); each midplane is a
// 4×4×4×4×2 sub-block, so the 96 midplanes tile a 2×3×4×4 midplane grid.
// The package provides the coordinate mapping, wrap-around hop metrics, and
// the partition-shape analyses that explain why the scheduler allocates
// contiguous midplane blocks.
package torus

import (
	"fmt"

	"mira/internal/topology"
)

// Node-torus dimensions of Mira (A, B, C, D, E).
var NodeDims = [5]int{8, 12, 16, 16, 2}

// MidplaneBlock is the node sub-block one midplane occupies.
var MidplaneBlock = [5]int{4, 4, 4, 4, 2}

// MidplaneDims is the midplane-grid shape (NodeDims / MidplaneBlock).
var MidplaneDims = [4]int{2, 3, 4, 4}

// TotalNodes recomputed from the torus dims; must equal topology.TotalNodes.
func TotalNodes() int {
	n := 1
	for _, d := range NodeDims {
		n *= d
	}
	return n
}

// Coord is a midplane's position in the 2×3×4×4 midplane grid.
type Coord struct {
	A, B, C, D int
}

// Valid reports whether the coordinate is inside the midplane grid.
func (c Coord) Valid() bool {
	return c.A >= 0 && c.A < MidplaneDims[0] &&
		c.B >= 0 && c.B < MidplaneDims[1] &&
		c.C >= 0 && c.C < MidplaneDims[2] &&
		c.D >= 0 && c.D < MidplaneDims[3]
}

func (c Coord) String() string {
	return fmt.Sprintf("<%d,%d,%d,%d>", c.A, c.B, c.C, c.D)
}

// MidplaneCoord maps a scheduler midplane index (rack.Index()*2 + m, in
// [0, 96)) to its torus coordinate. The mapping is the machine's cabling
// order: D varies fastest along a rack row, then C, with rows and midplane
// halves filling B and A.
func MidplaneCoord(midplane int) Coord {
	if midplane < 0 || midplane >= topology.NumMidplanes {
		panic(fmt.Sprintf("torus: midplane %d out of range", midplane))
	}
	c := Coord{}
	c.D = midplane % MidplaneDims[3]
	midplane /= MidplaneDims[3]
	c.C = midplane % MidplaneDims[2]
	midplane /= MidplaneDims[2]
	c.B = midplane % MidplaneDims[1]
	midplane /= MidplaneDims[1]
	c.A = midplane
	return c
}

// MidplaneIndex is the inverse of MidplaneCoord.
func MidplaneIndex(c Coord) int {
	if !c.Valid() {
		panic(fmt.Sprintf("torus: invalid coordinate %v", c))
	}
	return ((c.A*MidplaneDims[1]+c.B)*MidplaneDims[2]+c.C)*MidplaneDims[3] + c.D
}

// wrapDist is the distance along one torus dimension of size n.
func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// HopDistance is the minimal midplane-grid hop count between two midplanes,
// with wrap-around links in every dimension.
func HopDistance(m1, m2 int) int {
	c1, c2 := MidplaneCoord(m1), MidplaneCoord(m2)
	return wrapDist(c1.A, c2.A, MidplaneDims[0]) +
		wrapDist(c1.B, c2.B, MidplaneDims[1]) +
		wrapDist(c1.C, c2.C, MidplaneDims[2]) +
		wrapDist(c1.D, c2.D, MidplaneDims[3])
}

// Diameter is the largest pairwise hop distance in the midplane grid.
func Diameter() int {
	max := 0
	for i := 0; i < topology.NumMidplanes; i++ {
		for j := i + 1; j < topology.NumMidplanes; j++ {
			if d := HopDistance(i, j); d > max {
				max = d
			}
		}
	}
	return max
}

// MeanPairwiseHops returns the average hop distance over the given midplane
// set (a job partition). Single-midplane sets return 0.
func MeanPairwiseHops(midplanes []int) float64 {
	n := len(midplanes)
	if n < 2 {
		return 0
	}
	total, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += HopDistance(midplanes[i], midplanes[j])
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// ContiguousBlock returns a size-k midplane set forming a compact torus
// sub-block anchored at the given coordinate — the shape a topology-aware
// allocator would hand a job. It walks D, then C, then B, then A.
func ContiguousBlock(anchor Coord, k int) []int {
	if !anchor.Valid() {
		panic(fmt.Sprintf("torus: invalid anchor %v", anchor))
	}
	if k < 1 || k > topology.NumMidplanes {
		panic(fmt.Sprintf("torus: block size %d out of range", k))
	}
	out := make([]int, 0, k)
	for a := 0; a < MidplaneDims[0] && len(out) < k; a++ {
		for b := 0; b < MidplaneDims[1] && len(out) < k; b++ {
			for cc := 0; cc < MidplaneDims[2] && len(out) < k; cc++ {
				for d := 0; d < MidplaneDims[3] && len(out) < k; d++ {
					c := Coord{
						A: (anchor.A + a) % MidplaneDims[0],
						B: (anchor.B + b) % MidplaneDims[1],
						C: (anchor.C + cc) % MidplaneDims[2],
						D: (anchor.D + d) % MidplaneDims[3],
					}
					out = append(out, MidplaneIndex(c))
				}
			}
		}
	}
	return out
}

// LinkCount is the number of midplane-grid torus links: each midplane has
// 2 links per dimension (shared), with dimensions of size 2 collapsing the
// wrap link onto the direct link.
func LinkCount() int {
	links := 0
	for _, n := range MidplaneDims {
		// Links along this dimension: one ring per line of midplanes; a
		// ring of length n has n links, except n == 2 where the two
		// "directions" are the same physical link.
		ringLinks := n
		if n == 2 {
			ringLinks = 1
		}
		lines := topology.NumMidplanes / n
		links += lines * ringLinks
	}
	return links
}
