package cooling

import (
	"math"
	"testing"
	"time"

	"mira/internal/stats"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
	"mira/internal/weather"
)

func midwinter(year int) time.Time {
	return time.Date(year, 1, 20, 3, 0, 0, 0, timeutil.Chicago)
}

func midsummer(year int) time.Time {
	return time.Date(year, 7, 20, 15, 0, 0, 0, timeutil.Chicago)
}

func TestEconomizerSeasonal(t *testing.T) {
	p := NewPlant(weather.New(1), 2)
	// Averaged over many winter nights, the economizer should mostly run.
	var winter float64
	n := 0
	for d := 1; d <= 28; d++ {
		ts := time.Date(2015, 1, d, 4, 0, 0, 0, timeutil.Chicago)
		winter += p.EconomizerFraction(ts)
		n++
	}
	if winter/float64(n) < 0.5 {
		t.Errorf("January economizer fraction = %v, want > 0.5", winter/float64(n))
	}
	// Never in summer (out of season).
	if f := p.EconomizerFraction(midsummer(2015)); f != 0 {
		t.Errorf("July economizer fraction = %v, want 0", f)
	}
	// Out of season even if cold: April nights can be cold but the plant
	// runs chillers.
	if f := p.EconomizerFraction(time.Date(2015, 4, 2, 4, 0, 0, 0, timeutil.Chicago)); f != 0 {
		t.Errorf("April economizer fraction = %v, want 0", f)
	}
}

func TestSupplyTemperature(t *testing.T) {
	p := NewPlant(weather.New(3), 4)
	// Summer: chillers hold the setpoint tightly.
	var sum float64
	n := 0
	for d := 1; d <= 28; d++ {
		sum += float64(p.SupplyTemperature(time.Date(2015, 7, d, 12, 0, 0, 0, timeutil.Chicago)))
		n++
	}
	summerMean := sum / float64(n)
	if math.Abs(summerMean-64) > 0.3 {
		t.Errorf("summer supply mean = %v, want ≈64°F", summerMean)
	}
	// Winter: slightly warmer on free cooling (paper Fig. 4d).
	sum, n = 0, 0
	for d := 1; d <= 28; d++ {
		sum += float64(p.SupplyTemperature(time.Date(2015, 1, d, 4, 0, 0, 0, timeutil.Chicago)))
		n++
	}
	winterMean := sum / float64(n)
	if winterMean <= summerMean+0.2 {
		t.Errorf("winter supply %v should be warmer than summer %v", winterMean, summerMean)
	}
}

func TestThetaHeatBump(t *testing.T) {
	p := NewPlant(weather.New(5), 6)
	// Same calendar position, 2015 (before) vs 2016 (during Theta testing).
	var before, during float64
	for d := 1; d <= 28; d++ {
		before += float64(p.SupplyTemperature(time.Date(2015, 9, d, 12, 0, 0, 0, timeutil.Chicago)))
		during += float64(p.SupplyTemperature(time.Date(2016, 9, d, 12, 0, 0, 0, timeutil.Chicago)))
	}
	diff := (during - before) / 28
	if diff < 1.0 || diff > 2.2 {
		t.Errorf("Theta-period supply bump = %v°F, want ≈1.6", diff)
	}
	// Over by mid-2017.
	var after float64
	for d := 1; d <= 28; d++ {
		after += float64(p.SupplyTemperature(time.Date(2017, 9, d, 12, 0, 0, 0, timeutil.Chicago)))
	}
	if math.Abs(after-before)/28 > 0.3 {
		t.Errorf("post-Theta supply should return to baseline: %v vs %v", after/28, before/28)
	}
}

func TestPlantFlowStep(t *testing.T) {
	before := PlantFlow(time.Date(2016, 5, 1, 0, 0, 0, 0, timeutil.Chicago))
	after := PlantFlow(time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago))
	if float64(before) < 1248 || float64(before) > 1262 {
		t.Errorf("pre-Theta flow = %v, want ≈1250", before)
	}
	if float64(after) < 1298 || float64(after) > 1315 {
		t.Errorf("post-Theta flow = %v, want ≈1300", after)
	}
	if after-before < 45 {
		t.Errorf("Theta step = %v GPM, want ≈50", after-before)
	}
}

func TestPlantFlowSeasonalTrim(t *testing.T) {
	jan := PlantFlow(time.Date(2015, 1, 15, 0, 0, 0, 0, timeutil.Chicago))
	dec := PlantFlow(time.Date(2015, 12, 15, 0, 0, 0, 0, timeutil.Chicago))
	if dec <= jan {
		t.Error("December flow should exceed January flow")
	}
	if float64(dec-jan)/float64(jan) > 0.02 {
		t.Errorf("seasonal trim = %v, want ≈1%%", float64(dec-jan)/float64(jan))
	}
}

func TestFreeCoolingSavings(t *testing.T) {
	daily := FreeCoolingSavingsPerDay()
	// Paper: 17,820 kWh/day.
	if math.Abs(float64(daily)-17820) > 100 {
		t.Errorf("daily savings = %v, want ≈17,820 kWh", daily)
	}
	season := FreeCoolingSavingsPerSeason()
	// Paper: 2,174,040 kWh per December–March.
	if math.Abs(float64(season)-2174040) > 13000 {
		t.Errorf("season savings = %v, want ≈2,174,040 kWh", season)
	}
}

func TestPlantPower(t *testing.T) {
	p := NewPlant(weather.New(7), 8)
	heat := DesignHeatLoad
	summer := p.Power(heat, midsummer(2015))
	// Averaged winter nights should be cheaper than summer.
	var winter units.Watts
	for d := 1; d <= 28; d++ {
		winter += p.Power(heat, time.Date(2015, 1, d, 4, 0, 0, 0, timeutil.Chicago))
	}
	winterMean := winter / 28
	if winterMean >= summer {
		t.Errorf("winter plant power %v should be below summer %v", winterMean, summer)
	}
	// Full chiller mode: compressor + pumps.
	wantSummer := float64(heat)/ChillerCOP + float64(PumpTowerPower)
	if math.Abs(float64(summer)-wantSummer) > 1 {
		t.Errorf("summer plant power = %v, want %v", summer, wantSummer)
	}
	// Negative heat is clamped.
	if p.Power(-5, midsummer(2015)) < PumpTowerPower {
		t.Error("plant power should include pump power even at zero load")
	}
}

func TestChillerCapacityCoversLoad(t *testing.T) {
	total := units.TonsRefrigeration(float64(ChillerCapacityTons) * ChillerCount).Watts()
	if float64(total) < float64(DesignHeatLoad) {
		t.Errorf("chillers (%v) cannot cover design load (%v)", total, DesignHeatLoad)
	}
	// Oversized for economizer headroom (paper: towers are over-sized).
	if float64(total) < 2*float64(DesignHeatLoad) {
		t.Errorf("towers should be generously oversized: %v vs %v", total, DesignHeatLoad)
	}
}

func TestFlowNetworkSpread(t *testing.T) {
	n := NewFlowNetwork(9)
	ts := time.Date(2015, 5, 1, 0, 0, 0, 0, timeutil.Chicago)
	var flows []float64
	var total float64
	for _, r := range topology.AllRacks() {
		f := float64(n.RackFlow(r, ts))
		flows = append(flows, f)
		total += f
	}
	// Per-rack flow ≈26 GPM.
	mean := stats.Mean(flows)
	if mean < 24 || mean > 28 {
		t.Errorf("mean rack flow = %v, want ≈26 GPM", mean)
	}
	// Rack flows sum to the plant flow.
	if math.Abs(total-float64(PlantFlow(ts))) > 0.02*float64(PlantFlow(ts)) {
		t.Errorf("sum of rack flows = %v, plant flow = %v", total, PlantFlow(ts))
	}
	// Spread ≈11% (paper Fig. 7a).
	spread := stats.SpreadPercent(flows)
	if spread < 7 || spread > 15 {
		t.Errorf("rack flow spread = %v%%, want ≈11%%", spread)
	}
}

func TestFlowNetworkWeights(t *testing.T) {
	n := NewFlowNetwork(10)
	for _, r := range topology.AllRacks() {
		w := n.Weight(r)
		if w < 0.94 || w > 1.06 {
			t.Errorf("weight(%v) = %v out of range", r, w)
		}
	}
}

func TestHeatExchanger(t *testing.T) {
	// ≈51 kW into the loop at 26 GPM: ≈13°F rise, 64 → ≈77-79°F.
	out := HeatExchanger(64, units.KW(51), 26)
	if float64(out) < 75 || float64(out) > 80 {
		t.Errorf("HX outlet = %v, want ≈77-79°F", out)
	}
}

func TestDeterministicNetwork(t *testing.T) {
	a, b := NewFlowNetwork(11), NewFlowNetwork(11)
	for _, r := range topology.AllRacks() {
		if a.Weight(r) != b.Weight(r) {
			t.Fatal("network weights should be deterministic")
		}
	}
}
