// Package cooling models the Chilled Water Plant (CWP) and coolant
// distribution that kept Mira cool: two 1,500-ton chiller towers with a
// waterside economizer for winter free cooling, the external chilled-water
// loop feeding 48 under-floor heat exchangers, per-rack flow distribution
// through an impedance network with partial blockages, and the July 2016
// Theta cutover that raised the plant flow from ≈1250 to ≈1300 GPM while
// Theta's early testing dumped extra heat into the shared loop.
package cooling

import (
	"math/rand"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
	"mira/internal/weather"
)

// Plant-level constants (paper §II).
const (
	// ChillerCount and ChillerCapacity describe the CWP towers.
	ChillerCount = 2
	// ChillerCapacityTons per tower.
	ChillerCapacityTons units.TonsRefrigeration = 1500
	// SupplySetpoint is the chilled-water supply temperature the chillers
	// hold (the rack inlet ≈64°F).
	SupplySetpoint units.Fahrenheit = 64
	// EconomizerPenalty is how much warmer the supply runs on full free
	// cooling (the paper: environmental cooling is not as effective, so the
	// inlet temperature is slightly higher in the colder months).
	EconomizerPenalty units.Fahrenheit = 0.9
	// ThetaHeatPenalty is the loop temperature rise during Theta's early
	// testing (June 2016 – early 2017).
	ThetaHeatPenalty units.Fahrenheit = 1.6
	// PreThetaFlow and PostThetaFlow are Mira's plant flow rates around the
	// July 2016 impeller upgrade.
	PreThetaFlow  units.GPM = 1250
	PostThetaFlow units.GPM = 1300
	// ChillerCOP is the coefficient of performance of the chillers,
	// calibrated so that displacing them at full plant load saves the
	// paper's 17,820 kWh per day.
	ChillerCOP = 3.2
	// PumpTowerPower is the electrical draw of pumps and tower fans, paid
	// in both chiller and economizer mode.
	PumpTowerPower units.Watts = 180000
)

// DesignHeatLoad is the nominal heat load the free-cooling savings figure is
// quoted against (Mira's liquid-cooled heat at high utilization).
var DesignHeatLoad = units.MW(2.376)

// Plant models the CWP supply side.
type Plant struct {
	wx  *weather.Model
	rng *rand.Rand
}

// NewPlant creates a plant coupled to the given outdoor weather model.
func NewPlant(wx *weather.Model, seed int64) *Plant {
	return &Plant{wx: wx, rng: rand.New(rand.NewSource(seed))}
}

// EconomizerFraction returns how much of the plant load free cooling covers
// at time t, in [0, 1]: full below the economizer wet-bulb threshold, fading
// linearly to zero 8°F above it, and only during the December–March season
// in which the plant runs the economizer at all.
func (p *Plant) EconomizerFraction(t time.Time) float64 {
	if !timeutil.FreeCoolingSeason(t) {
		return 0
	}
	wb := float64(p.wx.At(t).WetBulb)
	threshold := float64(weather.EconomizerThreshold)
	switch {
	case wb <= threshold:
		return 1
	case wb >= threshold+8:
		return 0
	default:
		return 1 - (wb-threshold)/8
	}
}

// SupplyTemperature returns the chilled-water supply (rack inlet)
// temperature at time t. Free cooling runs slightly warm; Theta's testing
// period warms the shared loop further.
func (p *Plant) SupplyTemperature(t time.Time) units.Fahrenheit {
	temp := SupplySetpoint
	temp += units.Fahrenheit(p.EconomizerFraction(t) * float64(EconomizerPenalty))
	if !t.Before(timeutil.ThetaTestingStart) && t.Before(timeutil.ThetaTestingEnd) {
		temp += ThetaHeatPenalty
	}
	// Chiller control jitter.
	temp += units.Fahrenheit(p.rng.NormFloat64() * 0.18)
	return temp
}

// Power returns the plant's electrical draw while removing the given heat
// load at time t. The economizer displaces chiller compressor work but not
// pump/tower power.
func (p *Plant) Power(heat units.Watts, t time.Time) units.Watts {
	if heat < 0 {
		heat = 0
	}
	chillerShare := 1 - p.EconomizerFraction(t)
	compressor := units.Watts(float64(heat) / ChillerCOP * chillerShare)
	return compressor + PumpTowerPower
}

// FreeCoolingSavingsPerDay is the energy saved per day when 100% of CWP
// capacity comes from the economizer: the avoided compressor work at design
// load. The paper quotes 17,820 kWh/day.
func FreeCoolingSavingsPerDay() units.KilowattHours {
	compressor := units.Watts(float64(DesignHeatLoad) / ChillerCOP)
	return units.EnergyOver(compressor, 24)
}

// ColdSeasonDays is the December–March window length the paper's seasonal
// saving (2,174,040 kWh) is quoted over.
const ColdSeasonDays = 122

// FreeCoolingSavingsPerSeason is the energy saved by not operating the
// chillers through the cold months.
func FreeCoolingSavingsPerSeason() units.KilowattHours {
	return FreeCoolingSavingsPerDay() * ColdSeasonDays
}

// PlantFlow returns Mira's total coolant flow at time t: stepped up at the
// Theta cutover, with a mild operator-driven seasonal increase from June to
// December when utilization (and so heat) runs higher.
func PlantFlow(t time.Time) units.GPM {
	base := PreThetaFlow
	if !t.Before(timeutil.ThetaCutover) {
		base = PostThetaFlow
	}
	// Seasonal trim: +0 to +1.2% ramping July → December.
	yf := timeutil.YearFraction(t)
	if yf > 0.5 {
		base += units.GPM(float64(base) * 0.012 * (yf - 0.5) * 2)
	}
	return base
}

// FlowNetwork distributes the plant flow across the 48 rack heat
// exchangers. Under-floor pipe and filter blockages give each rack a static
// impedance weight; the paper measured up to 11% rack-to-rack difference.
type FlowNetwork struct {
	weight [topology.NumRacks]float64
	total  float64
	rng    *rand.Rand
}

// NewFlowNetwork builds the distribution network. The seed shapes the
// blockage pattern.
func NewFlowNetwork(seed int64) *FlowNetwork {
	rng := rand.New(rand.NewSource(seed))
	n := &FlowNetwork{rng: rng}
	for i := range n.weight {
		// Uniform impedance spread of ±5.5% ⇒ max/min ≈ 1.11.
		n.weight[i] = 0.945 + 0.11*rng.Float64()
		n.total += n.weight[i]
	}
	return n
}

// RackFlow returns the flow delivered to one rack at time t, including
// small turbulent measurement-scale fluctuation.
func (n *FlowNetwork) RackFlow(r topology.RackID, t time.Time) units.GPM {
	share := n.weight[r.Index()] / n.total
	flow := float64(PlantFlow(t)) * share
	flow *= 1 + 0.004*n.rng.NormFloat64()
	return units.GPM(flow)
}

// Weight returns the rack's impedance weight (≈1.0).
func (n *FlowNetwork) Weight(r topology.RackID) float64 { return n.weight[r.Index()] }

// HeatExchanger computes a rack's outlet coolant temperature from the inlet
// temperature, the heat dissipated into the internal loop, and the loop
// flow (paper Fig. 1: the under-floor HX couples the internal and external
// loops).
func HeatExchanger(inlet units.Fahrenheit, heat units.Watts, flow units.GPM) units.Fahrenheit {
	return units.OutletTemperature(inlet, heat, flow)
}
