// Package sim orchestrates the Mira digital twin: it steps the scheduler,
// power, weather, cooling-plant, airflow, sensor, and failure models over
// the 2014–2019 production window at coolant-monitor granularity, streams
// the measured telemetry to pluggable recorders, detects coolant monitor
// failures from the sensed thresholds (not from the failure schedule), and
// expands them into cascades, RAS storms, outages, and post-CMF follow-on
// failures.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mira/internal/airflow"
	"mira/internal/cooling"
	"mira/internal/failure"
	"mira/internal/obs"
	"mira/internal/power"
	"mira/internal/ras"
	"mira/internal/scheduler"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
	"mira/internal/weather"
	"mira/internal/workload"
)

// Simulator throughput metrics. Ticks/sec is the rate of
// mira_sim_ticks_total; mira_sim_day_wallclock_seconds tracks how much wall
// clock one simulated day costs, the twin's headline speed number; the
// recorder fan-out histogram isolates time spent delivering telemetry to
// recorders (tsdb ingest, collectors, watchers) from the physics itself.
var (
	metTicks = obs.NewCounter("mira_sim_ticks_total",
		"simulation ticks stepped across all runs in the process")
	metSamples = obs.NewCounter("mira_sim_samples_total",
		"coolant-monitor samples emitted to recorders")
	metIncidents = obs.NewCounter("mira_sim_incidents_total",
		"counted coolant-monitor-failure incidents")
	metTickDur = obs.NewHistogram("mira_sim_tick_duration_seconds",
		"wall-clock time per simulation tick", nil)
	metDayWall = obs.NewHistogram("mira_sim_day_wallclock_seconds",
		"wall-clock time per completed simulated day", nil)
	metFanout = obs.NewHistogram("mira_sim_recorder_fanout_seconds",
		"per-tick wall-clock time spent in recorder callbacks", nil)
	metSimTime = obs.NewGauge("mira_sim_time_seconds",
		"current simulated instant as unix seconds, for watch-mode progress")
)

// Incident is one counted coolant-monitor failure: an epicenter detected by
// its coolant monitor plus the cascade it dragged down.
type Incident struct {
	Time       time.Time
	Epicenter  topology.RackID
	Racks      []topology.RackID
	JobsKilled int
}

// Recorder consumes the simulation's output streams. Implementations that
// only care about a subset of callbacks can embed NopRecorder.
type Recorder interface {
	// OnSample receives each rack's measured coolant-monitor record, once
	// per rack per tick (racks that are down do not report).
	OnSample(rec sensors.Record)
	// OnTick receives system-level values once per tick.
	OnTick(t time.Time, systemPower units.Watts, utilization float64)
	// OnIncident receives each counted CMF incident.
	OnIncident(inc Incident)
	// OnRackState receives each rack's utilization once per rack per tick
	// (including down racks, at zero).
	OnRackState(t time.Time, rack topology.RackID, utilization float64)
}

// NopRecorder implements Recorder with no-ops, for embedding.
type NopRecorder struct{}

func (NopRecorder) OnSample(sensors.Record)                         {}
func (NopRecorder) OnTick(time.Time, units.Watts, float64)          {}
func (NopRecorder) OnIncident(Incident)                             {}
func (NopRecorder) OnRackState(time.Time, topology.RackID, float64) {}

// Config assembles a simulation.
type Config struct {
	// Seed derives every model's seed; two runs with the same seed are
	// identical.
	Seed int64
	// Start and End bound the run (defaults: the production window).
	Start, End time.Time
	// Step is the tick length (default timeutil.SampleInterval = 300 s).
	Step time.Duration
	// WeatherSeed overrides the outdoor-weather model's seed (default
	// Seed+5), so a campaign can sweep weather years independently of the
	// workload/failure draw.
	WeatherSeed int64
	// Scheduler, Failure override model parameters when non-zero.
	Scheduler scheduler.Config
	Failure   failure.Config
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = timeutil.ProductionStart
	}
	if c.End.IsZero() {
		c.End = timeutil.ProductionEnd
	}
	if c.Step <= 0 {
		c.Step = timeutil.SampleInterval
	}
	if c.Scheduler.Seed == 0 {
		c.Scheduler.Seed = c.Seed + 1
	}
	if c.Failure.Seed == 0 {
		c.Failure.Seed = c.Seed + 2
	}
	if c.WeatherSeed == 0 {
		c.WeatherSeed = c.Seed + 5
	}
	return c
}

// Simulator wires the substrate models together.
type Simulator struct {
	cfg Config

	gen    *workload.Generator
	sched  *scheduler.Scheduler
	powerM *power.Model
	wx     *weather.Model
	plant  *cooling.Plant
	flows  *cooling.FlowNetwork
	air    *airflow.Field
	engine *failure.Engine
	log    *ras.Log
	thresh sensors.Thresholds

	monitors  [topology.NumRacks]*sensors.Monitor
	inletBias [topology.NumRacks]float64

	lastCMF [topology.NumRacks]time.Time
	pending []ras.Event // future non-CMF events, time-sorted

	// heatEMA smooths each rack's heat load into the coolant: the rack's
	// thermal mass and loop recirculation act as a low-pass filter, so the
	// outlet temperature does not chase every scheduling transient.
	heatEMA     [topology.NumRacks]float64
	heatEMAInit [topology.NumRacks]bool

	// excursions are the rare room-cooling upsets (power outages, air-
	// handler failures, extreme weather) during which the data-center
	// temperature escapes its regulated band (paper §V).
	excursions []excursion

	recorders []Recorder
	incidents []Incident
}

// New builds a simulator.
func New(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	s := &Simulator{
		cfg:    cfg,
		gen:    workload.NewGenerator(cfg.Seed + 3),
		sched:  scheduler.New(cfg.Scheduler),
		powerM: power.NewModel(cfg.Seed + 4),
		wx:     weather.New(cfg.WeatherSeed),
		log:    ras.NewLog(),
		thresh: sensors.DefaultThresholds(),
	}
	s.plant = cooling.NewPlant(s.wx, cfg.Seed+6)
	s.flows = cooling.NewFlowNetwork(cfg.Seed + 7)
	s.air = airflow.NewField(cfg.Seed + 8)
	s.engine = failure.NewEngine(cfg.Failure)
	for i := range s.monitors {
		s.monitors[i] = sensors.NewMonitor(topology.RackByIndex(i), cfg.Seed+9)
	}
	// The one replaced sensor of the six years: a slowly drifting outlet
	// sensor on rack (2,B), swapped in mid-2017.
	s.monitors[topology.RackID{Row: 2, Col: 0xB}.Index()].InjectDrift(
		sensors.MetricOutletTemp, 0.002,
		time.Date(2016, 9, 1, 0, 0, 0, 0, timeutil.Chicago),
		time.Date(2017, 7, 1, 0, 0, 0, 0, timeutil.Chicago),
	)
	// Small static inlet offsets from pipe-run length differences.
	net := cooling.NewFlowNetwork(cfg.Seed + 10) // reuse as a cheap seeded field
	for i := range s.inletBias {
		s.inletBias[i] = (net.Weight(topology.RackByIndex(i)) - 1) * 3 // ±0.17°F
	}
	// Background non-CMF failures for the whole run.
	s.pending = s.engine.BackgroundEvents(cfg.Start, cfg.End)
	sort.Slice(s.pending, func(a, b int) bool { return s.pending[a].Time.Before(s.pending[b].Time) })
	s.scheduleExcursions(cfg)
	return s
}

// excursion is one room-cooling upset window.
type excursion struct {
	start, end time.Time
	peak       float64 // °F above the regulated band
}

// scheduleExcursions samples ≈4 upsets per year, 4–24 h long, +4–10 °F.
func (s *Simulator) scheduleExcursions(cfg Config) {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	days := cfg.End.Sub(cfg.Start).Hours() / 24
	n := int(days/365.25*4 + 0.5)
	for i := 0; i < n; i++ {
		start := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.End.Sub(cfg.Start)))))
		dur := 4*time.Hour + time.Duration(rng.Int63n(int64(20*time.Hour)))
		s.excursions = append(s.excursions, excursion{
			start: start,
			end:   start.Add(dur),
			peak:  4 + 6*rng.Float64(),
		})
	}
	sort.Slice(s.excursions, func(a, b int) bool { return s.excursions[a].start.Before(s.excursions[b].start) })
}

// excursionDelta returns the room-temperature offset at now: a ramp up to
// the upset's peak and back down.
func (s *Simulator) excursionDelta(now time.Time) float64 {
	for _, e := range s.excursions {
		if now.Before(e.start) {
			break
		}
		if now.Before(e.end) {
			// Triangular profile over the window.
			total := e.end.Sub(e.start).Hours()
			into := now.Sub(e.start).Hours()
			frac := into / total
			if frac > 0.5 {
				frac = 1 - frac
			}
			return e.peak * 2 * frac
		}
	}
	return 0
}

// Log returns the RAS log (live; grows as the simulation runs).
func (s *Simulator) Log() *ras.Log { return s.log }

// Incidents returns the counted CMF incidents so far.
func (s *Simulator) Incidents() []Incident { return s.incidents }

// Scheduler exposes the scheduler for inspection.
func (s *Simulator) Scheduler() *scheduler.Scheduler { return s.sched }

// Engine exposes the failure engine for inspection.
func (s *Simulator) Engine() *failure.Engine { return s.engine }

// AddRecorder attaches a recorder before Run.
func (s *Simulator) AddRecorder(r Recorder) { s.recorders = append(s.recorders, r) }

// Run executes the configured window. It returns an error only for
// impossible configurations; model behavior (failures, storms) is data, not
// error.
func (s *Simulator) Run() error {
	if !s.cfg.End.After(s.cfg.Start) {
		return fmt.Errorf("sim: empty window %v .. %v", s.cfg.Start, s.cfg.End)
	}
	// Day accounting: observe the wall clock each completed simulated day
	// costs, keyed on the simulated calendar day rolling over.
	curDay := int64(-1)
	dayWall := time.Now()
	for now := s.cfg.Start; now.Before(s.cfg.End); now = now.Add(s.cfg.Step) {
		tickWall := time.Now()
		s.step(now)
		metTickDur.ObserveSince(tickWall)
		metTicks.Inc()
		metSimTime.Set(float64(now.Unix()))
		if day := now.Unix() / 86400; day != curDay {
			if curDay >= 0 {
				metDayWall.ObserveSince(dayWall)
			}
			curDay = day
			dayWall = time.Now()
		}
	}
	return nil
}

// step advances one tick.
func (s *Simulator) step(now time.Time) {
	// fanout accumulates wall clock spent inside recorder callbacks this
	// tick, separating telemetry delivery cost from the physics models.
	var fanout time.Duration
	defer func() { metFanout.Observe(fanout.Seconds()) }()
	// 1. Workload and scheduling.
	s.sched.Submit(s.gen.Arrivals(now, s.cfg.Step))
	s.sched.Step(now)
	snap := s.sched.Snapshot(now)

	// 2. Non-CMF failures that have come due.
	s.applyPending(now)

	// 3. System-level power and utilization.
	sysPower := s.powerM.SystemPower(snap, now)
	util := s.sched.SystemUtilization(now)
	tickFan := time.Now()
	for _, r := range s.recorders {
		r.OnTick(now, sysPower, util)
	}
	fanout += time.Since(tickFan)

	// 4. Ambient base conditions from the outdoor weather.
	outdoor := s.wx.At(now)
	baseTemp := units.Fahrenheit(79.5 + 0.09*(float64(outdoor.Temperature)-51) + s.excursionDelta(now))
	baseRH := units.RelativeHumidity(32 + 0.24*(float64(outdoor.Humidity)-68)).Clamp()

	// 5. Plant supply.
	supply := s.plant.SupplyTemperature(now)

	// 6. Per-rack telemetry, sampling, and threshold checks.
	var fatalEpicenters []topology.RackID
	for i, rack := range topology.AllRacks() {
		rackUtil := s.sched.RackUtilization(rack, now)
		for _, r := range s.recorders {
			r.OnRackState(now, rack, rackUtil)
		}
		if s.sched.RackDown(rack, now) {
			continue // powered-off racks do not report
		}
		flow := s.flows.RackFlow(rack, now)
		inlet := supply + units.Fahrenheit(s.inletBias[i])
		dcTemp := s.air.RackTemperature(baseTemp, rack)
		dcRH := s.air.RackHumidity(baseRH, rack)

		if ep := s.engine.ActiveEpisode(rack, now); ep != nil {
			inlet *= units.Fahrenheit(1 + ep.InletDeltaFraction(now))
			dcRH = (dcRH + units.RelativeHumidity(ep.HumidityDelta(now))).Clamp()
			if ep.Epicenter == rack {
				flow = units.GPM(float64(flow) * ep.FlowFactor(now))
			}
		}

		rackPower := s.powerM.RackPower(rack, snap[i*topology.MidplanesPerRack:(i+1)*topology.MidplanesPerRack], now)
		heat := float64(power.RackHeatToCoolant(rackPower))
		if !s.heatEMAInit[i] {
			s.heatEMA[i] = heat
			s.heatEMAInit[i] = true
		} else {
			// Thermal time constant ≈ 3 h.
			alpha := s.cfg.Step.Hours() / 3.0
			if alpha > 1 {
				alpha = 1
			}
			s.heatEMA[i] += alpha * (heat - s.heatEMA[i])
		}
		outlet := cooling.HeatExchanger(inlet, units.Watts(s.heatEMA[i]), flow)

		truth := sensors.Record{
			Time: now, Rack: rack,
			DCTemperature: dcTemp, DCHumidity: dcRH,
			Flow: flow, InletTemp: inlet, OutletTemp: outlet,
			Power: rackPower,
		}
		measured := s.monitors[i].Sample(truth)
		metSamples.Inc()
		sampleFan := time.Now()
		for _, r := range s.recorders {
			r.OnSample(measured)
		}
		fanout += time.Since(sampleFan)

		alarms := s.thresh.Check(measured)
		for _, a := range alarms {
			if a.Severity == sensors.Warn {
				s.log.Append(ras.Event{Time: now, Rack: rack, Type: ras.CoolantMonitor, Severity: ras.Warn, Message: a.Reason})
			}
		}
		if sensors.HasFatal(alarms) && now.Sub(s.lastCMF[i]) > ras.CMFWindow {
			fatalEpicenters = append(fatalEpicenters, rack)
		}
	}

	// 7. Expand detected failures into incidents.
	for _, epicenter := range fatalEpicenters {
		s.triggerCMF(epicenter, now)
	}
}

// triggerCMF handles a fatal coolant-monitor detection: cascade, storms,
// outages, job kills, and the post-CMF failure stream.
func (s *Simulator) triggerCMF(epicenter topology.RackID, now time.Time) {
	var racks []topology.RackID
	if ep := s.engine.ActiveEpisode(epicenter, now); ep != nil && ep.Epicenter == epicenter {
		racks = ep.Racks
	} else {
		// A threshold trip without a scheduled episode (e.g. sensor noise
		// during an extreme excursion): the epicenter alone goes down.
		racks = []topology.RackID{epicenter}
	}

	inc := Incident{Time: now, Epicenter: epicenter, Racks: racks}
	killed := 0
	for _, rack := range racks {
		// The Blue Gene/Q control action: close the solenoid valve, cut
		// the power supply; the rack takes hours to come back.
		outage := s.engine.OutageDuration()
		killed += s.sched.FailRacks([]topology.RackID{rack}, now.Add(outage))
		s.lastCMF[rack.Index()] = now
		for _, ev := range s.engine.Storm(rack, now) {
			s.log.Append(ev)
		}
	}
	inc.JobsKilled = killed
	s.incidents = append(s.incidents, inc)
	metIncidents.Inc()

	// Follow-on non-CMF failures over the next 48 hours.
	s.pending = append(s.pending, s.engine.PostCMFEvents(now)...)
	sort.Slice(s.pending, func(a, b int) bool { return s.pending[a].Time.Before(s.pending[b].Time) })

	for _, r := range s.recorders {
		r.OnIncident(inc)
	}
}

// applyPending logs non-CMF failures that have come due and takes their
// racks down for about an hour.
func (s *Simulator) applyPending(now time.Time) {
	for len(s.pending) > 0 && !s.pending[0].Time.After(now) {
		ev := s.pending[0]
		s.pending = s.pending[1:]
		s.log.Append(ev)
		s.sched.FailRacks([]topology.RackID{ev.Rack}, ev.Time.Add(time.Hour))
	}
}
