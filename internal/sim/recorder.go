package sim

import (
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// Window is a fixed-length trailing slice of one rack's telemetry, ending
// at End. Positive windows end at a CMF; negative windows end at quiet
// moments. They feed both the Fig. 12 lead-up analysis and the predictor's
// training set.
type Window struct {
	Rack    topology.RackID
	End     time.Time
	Records []sensors.Record // oldest first, ending at End
}

// IncidentWindowRecorder captures the six hours of telemetry leading up to
// every CMF (per affected rack) plus a reservoir of candidate negative
// windows sampled evenly across the run.
type IncidentWindowRecorder struct {
	NopRecorder

	windowTicks int
	negEvery    int
	maxNeg      int

	rings    [topology.NumRacks][]sensors.Record // circular
	ringPos  [topology.NumRacks]int
	ringFull [topology.NumRacks]bool
	tickNo   [topology.NumRacks]int

	positives []Window
	negatives []Window
	negSeen   int64
	rngState  uint64

	// cmfTimes per rack, for negative filtering.
	cmfTimes [topology.NumRacks][]time.Time
}

// NewIncidentWindowRecorder creates a recorder whose windows span
// windowTicks samples. A candidate negative window is offered every
// negEvery ticks per rack into a reservoir of maxNeg.
func NewIncidentWindowRecorder(windowTicks, negEvery, maxNeg int) *IncidentWindowRecorder {
	r := &IncidentWindowRecorder{
		windowTicks: windowTicks,
		negEvery:    negEvery,
		maxNeg:      maxNeg,
		rngState:    0x9E3779B97F4A7C15,
	}
	for i := range r.rings {
		r.rings[i] = make([]sensors.Record, windowTicks)
	}
	return r
}

func (r *IncidentWindowRecorder) rand() uint64 {
	x := r.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rngState = x
	return x
}

// OnSample pushes into the rack's ring and occasionally offers a negative
// candidate.
func (r *IncidentWindowRecorder) OnSample(rec sensors.Record) {
	i := rec.Rack.Index()
	r.rings[i][r.ringPos[i]] = rec
	r.ringPos[i] = (r.ringPos[i] + 1) % r.windowTicks
	if r.ringPos[i] == 0 {
		r.ringFull[i] = true
	}
	r.tickNo[i]++
	if r.ringFull[i] && r.negEvery > 0 && r.tickNo[i]%r.negEvery == 0 {
		r.offerNegative(rec.Rack, rec.Time)
	}
}

// snapshot copies the rack's ring in time order.
func (r *IncidentWindowRecorder) snapshot(rack topology.RackID) []sensors.Record {
	i := rack.Index()
	if !r.ringFull[i] {
		out := make([]sensors.Record, r.ringPos[i])
		copy(out, r.rings[i][:r.ringPos[i]])
		return out
	}
	out := make([]sensors.Record, 0, r.windowTicks)
	out = append(out, r.rings[i][r.ringPos[i]:]...)
	out = append(out, r.rings[i][:r.ringPos[i]]...)
	return out
}

func (r *IncidentWindowRecorder) offerNegative(rack topology.RackID, t time.Time) {
	r.negSeen++
	w := Window{Rack: rack, End: t, Records: r.snapshot(rack)}
	if len(r.negatives) < r.maxNeg {
		r.negatives = append(r.negatives, w)
		return
	}
	j := int64(r.rand() % uint64(r.negSeen))
	if j < int64(r.maxNeg) {
		r.negatives[j] = w
	}
}

// OnIncident snapshots the lead-up window of every affected rack.
func (r *IncidentWindowRecorder) OnIncident(inc Incident) {
	for _, rack := range inc.Racks {
		i := rack.Index()
		if !r.ringFull[i] {
			continue // not enough history yet
		}
		r.positives = append(r.positives, Window{Rack: rack, End: inc.Time, Records: r.snapshot(rack)})
		r.cmfTimes[i] = append(r.cmfTimes[i], inc.Time)
	}
}

// Positives returns the captured pre-CMF windows.
func (r *IncidentWindowRecorder) Positives() []Window { return r.positives }

// Negatives returns the sampled quiet windows whose rack saw no CMF within
// the given horizon after the window's end (the paper labels a window
// negative when "no CMF occurred within the next six hours").
func (r *IncidentWindowRecorder) Negatives(horizon time.Duration) []Window {
	var out []Window
	for _, w := range r.negatives {
		if !r.cmfWithin(w.Rack, w.End, horizon) {
			out = append(out, w)
		}
	}
	return out
}

func (r *IncidentWindowRecorder) cmfWithin(rack topology.RackID, t time.Time, horizon time.Duration) bool {
	for _, ct := range r.cmfTimes[rack.Index()] {
		d := ct.Sub(t)
		// Also exclude windows overlapping a recent CMF's aftermath.
		if d > -horizon && d < horizon {
			return true
		}
	}
	return false
}

// EnvDBRecorder streams samples into an environmental database — the
// slice-backed envdb.Store or the compressed, concurrent tsdb.Store.
type EnvDBRecorder struct {
	NopRecorder
	DB envdb.DB
	// Err records the first append failure (out-of-order data would be a
	// simulator bug).
	Err error
}

// NewEnvDBRecorder wraps a store.
func NewEnvDBRecorder(db envdb.DB) *EnvDBRecorder { return &EnvDBRecorder{DB: db} }

// OnSample appends to the store.
func (r *EnvDBRecorder) OnSample(rec sensors.Record) {
	if err := r.DB.Append(rec); err != nil && r.Err == nil {
		r.Err = err
	}
}

// HallRecorder forwards to an inner recorder with every sample's rack
// re-tagged into one machine hall — how a fleet run stands up one
// simulator per hall against a shared multi-hall store. Racks at or past
// the fleet's per-hall width are dropped, so a narrowed fleet (-racks)
// never feeds out-of-fleet records to the sink. Only samples carry rack
// identity on the telemetry path; the other recorder callbacks pass
// through untouched.
type HallRecorder struct {
	Recorder
	Hall  int
	Racks int // per-hall rack count; samples with Index() >= Racks drop
}

// NewHallRecorder wraps inner for hall h of a fleet with racks racks per
// hall (<= 0 selects the full 48-rack machine).
func NewHallRecorder(inner Recorder, hall, racks int) *HallRecorder {
	if racks <= 0 {
		racks = topology.NumRacks
	}
	return &HallRecorder{Recorder: inner, Hall: hall, Racks: racks}
}

// OnSample re-tags the record's hall and forwards it.
func (h *HallRecorder) OnSample(rec sensors.Record) {
	if rec.Rack.Index() >= h.Racks {
		return
	}
	rec.Rack.Hall = h.Hall
	h.Recorder.OnSample(rec)
}

// SystemSeries accumulates the per-tick system power and utilization.
type SystemSeries struct {
	NopRecorder
	Times       []time.Time
	PowerMW     []float64
	Utilization []float64
}

// OnTick appends the tick values.
func (s *SystemSeries) OnTick(t time.Time, p units.Watts, util float64) {
	s.Times = append(s.Times, t)
	s.PowerMW = append(s.PowerMW, p.Megawatts())
	s.Utilization = append(s.Utilization, util)
}
