package sim

import (
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/ras"
	"mira/internal/sensors"
	"mira/internal/stats"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// runWindow runs a simulator over [start, start+days) with the given step
// and recorders.
func runWindow(t *testing.T, seed int64, start time.Time, days int, step time.Duration, recs ...Recorder) *Simulator {
	t.Helper()
	s := New(Config{Seed: seed, Start: start, End: start.AddDate(0, 0, days), Step: step})
	for _, r := range recs {
		s.AddRecorder(r)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunEmptyWindow(t *testing.T) {
	s := New(Config{Seed: 1, Start: timeutil.ProductionStart, End: timeutil.ProductionStart})
	if err := s.Run(); err == nil {
		t.Error("empty window should error")
	}
}

func TestSmokeWeekTelemetry(t *testing.T) {
	db := envdb.NewStore()
	rec := NewEnvDBRecorder(db)
	sys := &SystemSeries{}
	start := time.Date(2015, 4, 7, 0, 0, 0, 0, timeutil.Chicago)
	runWindow(t, 2, start, 7, timeutil.SampleInterval, rec, sys)
	if rec.Err != nil {
		t.Fatalf("envdb recorder error: %v", rec.Err)
	}
	// 7 days × 288 ticks × ≤48 racks.
	if db.Len() < 7*288*40 || db.Len() > 7*288*48 {
		t.Errorf("stored records = %d", db.Len())
	}
	// Telemetry plausibility: inlet ≈64, outlet ≈70-80, flow ≈26.
	var inlet, outlet, flow, power []float64
	db.EachRecord(func(r sensors.Record) {
		inlet = append(inlet, float64(r.InletTemp))
		outlet = append(outlet, float64(r.OutletTemp))
		flow = append(flow, float64(r.Flow))
		power = append(power, float64(r.Power))
	})
	if m := stats.Mean(inlet); m < 63 || m > 66 {
		t.Errorf("mean inlet = %v, want ≈64", m)
	}
	if m := stats.Mean(outlet); m < 72 || m > 82 {
		t.Errorf("mean outlet = %v, want ≈77-79", m)
	}
	if m := stats.Mean(flow); m < 24 || m > 29 {
		t.Errorf("mean rack flow = %v, want ≈26-27", m)
	}
	if m := stats.Mean(power); m < 40000 || m > 65000 {
		t.Errorf("mean rack power = %v, want ≈55 kW", m)
	}
	if stats.Mean(outlet) <= stats.Mean(inlet)+8 {
		t.Error("outlet should run well above inlet")
	}
	// System series sane.
	if len(sys.PowerMW) != 7*288 {
		t.Errorf("system ticks = %d", len(sys.PowerMW))
	}
	if m := stats.Mean(sys.PowerMW); m < 2.1 || m > 3.1 {
		t.Errorf("system power = %v MW", m)
	}
	if m := stats.Mean(sys.Utilization); m < 0.6 || m > 1.0 {
		t.Errorf("utilization = %v", m)
	}
}

func TestIncidentsDetectedDuringThetaSurge(t *testing.T) {
	// August–September 2016 is the failure-dense period; a two-month run
	// should detect several incidents purely from sensor thresholds.
	start := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	win := NewIncidentWindowRecorder(72, 288, 500)
	s := runWindow(t, 3, start, 60, timeutil.SampleInterval, win)
	incs := s.Incidents()
	if len(incs) < 3 {
		t.Fatalf("incidents in Theta surge = %d, want several", len(incs))
	}
	for _, inc := range incs {
		if len(inc.Racks) < 1 || inc.Racks[0] != inc.Epicenter {
			t.Errorf("incident cascade malformed: %+v", inc)
		}
	}
	// The RAS log should hold storm messages (way more than incidents).
	if s.Log().Len() < len(incs)*100 {
		t.Errorf("RAS log = %d events for %d incidents, expected storms", s.Log().Len(), len(incs))
	}
	// Deduped CMF count equals the total racks affected (within window).
	dedup := s.Log().DedupCMF()
	wantCounts := 0
	for _, inc := range incs {
		wantCounts += len(inc.Racks)
	}
	if len(dedup) < wantCounts*8/10 || len(dedup) > wantCounts {
		t.Errorf("deduped CMFs = %d, incidents cover %d racks", len(dedup), wantCounts)
	}
	// Positive windows captured for affected racks.
	if len(win.Positives()) == 0 {
		t.Error("no positive windows captured")
	}
	// Negatives exist and exclude CMF neighborhoods.
	negs := win.Negatives(6 * time.Hour)
	if len(negs) == 0 {
		t.Error("no negative windows")
	}
	for _, w := range negs {
		if len(w.Records) != 72 {
			t.Fatalf("negative window has %d records, want 72", len(w.Records))
		}
	}
}

func TestIncidentKillsJobsAndDownsRacks(t *testing.T) {
	start := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	s := runWindow(t, 4, start, 45, timeutil.SampleInterval)
	incs := s.Incidents()
	if len(incs) == 0 {
		t.Skip("no incidents this seed/window")
	}
	killed := 0
	for _, inc := range incs {
		killed += inc.JobsKilled
	}
	if killed == 0 {
		t.Error("incidents on a ~90% utilized machine should kill jobs")
	}
}

func TestPreCMFSignatureInWindows(t *testing.T) {
	// The captured positive windows must show the paper's Fig. 12 shape:
	// inlet dips midway then spikes at the end; flow collapses at the end.
	start := time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	win := NewIncidentWindowRecorder(72, 0, 0)
	s := runWindow(t, 5, start, 90, timeutil.SampleInterval, win)
	pos := win.Positives()
	if len(pos) == 0 {
		t.Skip("no incidents captured")
	}
	// Average across epicenter windows only (cascade racks lack the local
	// flow collapse).
	epicenters := make(map[topology.RackID]map[time.Time]bool)
	for _, inc := range s.Incidents() {
		if epicenters[inc.Epicenter] == nil {
			epicenters[inc.Epicenter] = make(map[time.Time]bool)
		}
		epicenters[inc.Epicenter][inc.Time] = true
	}
	var dipSum, endSum, flowEndSum float64
	n := 0
	for _, w := range pos {
		if epicenters[w.Rack] == nil || !epicenters[w.Rack][w.End] {
			continue
		}
		recs := w.Records
		base := float64(recs[0].InletTemp)
		mid := float64(recs[len(recs)/2].InletTemp) // ≈3h before
		end := float64(recs[len(recs)-1].InletTemp) // at failure
		flowBase := float64(recs[0].Flow)
		flowEnd := float64(recs[len(recs)-1].Flow)
		dipSum += (mid - base) / base
		endSum += (end - base) / base
		flowEndSum += flowEnd / flowBase
		n++
	}
	if n == 0 {
		t.Skip("no epicenter windows")
	}
	dip := dipSum / float64(n)
	end := endSum / float64(n)
	flowEnd := flowEndSum / float64(n)
	if dip > -0.02 {
		t.Errorf("mean inlet mid-window dip = %v, want ≈-5%%", dip)
	}
	if end < 0.04 {
		t.Errorf("mean inlet end spike = %v, want ≈+8%%", end)
	}
	if flowEnd > 0.75 {
		t.Errorf("mean final flow fraction = %v, want ≈0.55", flowEnd)
	}
}

func TestDeterminism(t *testing.T) {
	start := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	run := func() (int, int, float64) {
		db := envdb.NewDownsampledStore(12)
		rec := NewEnvDBRecorder(db)
		s := runWindow(t, 6, start, 14, timeutil.SampleInterval, rec)
		var sum float64
		db.EachRecord(func(r sensors.Record) { sum += float64(r.Power) })
		return s.Log().Len(), len(s.Incidents()), sum
	}
	l1, i1, s1 := run()
	l2, i2, s2 := run()
	if l1 != l2 || i1 != i2 || s1 != s2 {
		t.Errorf("non-deterministic run: (%d,%d,%v) vs (%d,%d,%v)", l1, i1, s1, l2, i2, s2)
	}
}

func TestDownRacksStopReporting(t *testing.T) {
	start := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	db := envdb.NewStore()
	rec := NewEnvDBRecorder(db)
	s := runWindow(t, 7, start, 45, timeutil.SampleInterval, rec)
	incs := s.Incidents()
	if len(incs) == 0 {
		t.Skip("no incidents this window")
	}
	inc := incs[0]
	// In the hour after the failure, the epicenter should have no samples.
	recs := db.Query(inc.Epicenter, inc.Time.Add(timeutil.SampleInterval), inc.Time.Add(time.Hour))
	if len(recs) != 0 {
		t.Errorf("down rack reported %d samples after failure", len(recs))
	}
}

func TestPostCMFEventsAppearInLog(t *testing.T) {
	start := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	s := runWindow(t, 8, start, 60, timeutil.SampleInterval)
	if len(s.Incidents()) == 0 {
		t.Skip("no incidents")
	}
	nonCMF := s.Log().DedupNonCMF()
	if len(nonCMF) == 0 {
		t.Error("post-CMF/background non-CMF failures should appear in the log")
	}
	types := ras.CountByType(nonCMF)
	if types[ras.CoolantMonitor] != 0 {
		t.Error("non-CMF dedup should exclude coolant monitor events")
	}
}

func TestMondayPowerDip(t *testing.T) {
	// Across 8 weeks, mean Monday power should sit below non-Monday power
	// (maintenance burners), and utilization should dip only slightly.
	sys := &SystemSeries{}
	start := time.Date(2015, 3, 1, 0, 0, 0, 0, timeutil.Chicago)
	runWindow(t, 9, start, 56, 2*timeutil.SampleInterval, sys)
	var monP, otherP, monU, otherU series2
	for i, ts := range sys.Times {
		if ts.Weekday() == time.Monday {
			monP.add(sys.PowerMW[i])
			monU.add(sys.Utilization[i])
		} else {
			otherP.add(sys.PowerMW[i])
			otherU.add(sys.Utilization[i])
		}
	}
	if monP.mean() >= otherP.mean() {
		t.Errorf("Monday power %v should be below other days %v", monP.mean(), otherP.mean())
	}
	powerDip := (otherP.mean() - monP.mean()) / monP.mean()
	utilDip := (otherU.mean() - monU.mean()) / monU.mean()
	if powerDip < 0.01 || powerDip > 0.15 {
		t.Errorf("non-Monday power increase = %v, want ≈6%%", powerDip)
	}
	if utilDip > powerDip {
		t.Errorf("utilization dip (%v) should be smaller than power dip (%v)", utilDip, powerDip)
	}
}

type series2 struct {
	sum float64
	n   int
}

func (s *series2) add(v float64) { s.sum += v; s.n++ }
func (s *series2) mean() float64 { return s.sum / float64(s.n) }

func TestSupplyAffectsInletSeasonally(t *testing.T) {
	// Winter inlet (economizer) should read slightly warmer than late
	// spring inlet (chillers).
	inletMean := func(start time.Time) float64 {
		db := envdb.NewDownsampledStore(6)
		rec := NewEnvDBRecorder(db)
		runWindow(t, 10, start, 28, 2*timeutil.SampleInterval, rec)
		var vals []float64
		db.EachRecord(func(r sensors.Record) { vals = append(vals, float64(r.InletTemp)) })
		return stats.Mean(vals)
	}
	jan := inletMean(time.Date(2015, 1, 5, 0, 0, 0, 0, timeutil.Chicago))
	may := inletMean(time.Date(2015, 4, 20, 0, 0, 0, 0, timeutil.Chicago))
	if jan <= may {
		t.Errorf("January inlet %v should exceed May inlet %v (economizer penalty)", jan, may)
	}
}

func TestNopRecorder(t *testing.T) {
	var r NopRecorder
	r.OnSample(sensors.Record{})
	r.OnTick(time.Time{}, units.MW(1), 0.5)
	r.OnIncident(Incident{})
}

func TestExcursionsRaiseAmbientPeaks(t *testing.T) {
	// A year-long run should contain a handful of room-cooling upsets that
	// push the ambient temperature beyond the regulated band (paper §V:
	// excursions during power outages and extreme weather).
	db := envdb.NewDownsampledStore(6)
	rec := NewEnvDBRecorder(db)
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	runWindow(t, 12, start, 365, 2*timeutil.SampleInterval, rec)
	var maxTemp float64
	db.EachRecord(func(r sensors.Record) {
		if v := float64(r.DCTemperature); v > maxTemp {
			maxTemp = v
		}
	})
	// The paper's Fig. 8 tops out near 90 °F; our per-rack sample maximum
	// additionally carries the row-end airflow offset tail.
	if maxTemp < 86 || maxTemp > 98 {
		t.Errorf("peak ambient temperature = %v, want ≈88-97 °F during excursions", maxTemp)
	}
}

func TestExcursionDeltaShape(t *testing.T) {
	s := New(Config{Seed: 13, Start: timeutil.ProductionStart, End: timeutil.ProductionStart.AddDate(1, 0, 0)})
	if len(s.excursions) < 2 || len(s.excursions) > 7 {
		t.Fatalf("excursions per year = %d, want ≈4", len(s.excursions))
	}
	e := s.excursions[0]
	mid := e.start.Add(e.end.Sub(e.start) / 2)
	if d := s.excursionDelta(mid); d < e.peak*0.9 {
		t.Errorf("mid-excursion delta = %v, want ≈peak %v", d, e.peak)
	}
	if d := s.excursionDelta(e.start.Add(-time.Hour)); d != 0 {
		t.Errorf("pre-excursion delta = %v, want 0", d)
	}
	if d := s.excursionDelta(e.end.Add(time.Hour)); d != 0 {
		t.Errorf("post-excursion delta = %v, want 0", d)
	}
	if e.peak < 4 || e.peak > 10 {
		t.Errorf("peak = %v out of range", e.peak)
	}
}

func TestDriftingSensorDoesNotTriggerFalseCMFs(t *testing.T) {
	// The monitor on rack (2,B) drifts on its outlet channel from September
	// 2016 until its mid-2017 replacement (the paper's one replaced
	// sensor). The outlet has no alarm thresholds, so the drift must show
	// in telemetry without producing failures in quiet months.
	db := envdb.NewDownsampledStore(6)
	rec := NewEnvDBRecorder(db)
	// 2017 is the quiet year: the failure schedule has zero episodes.
	start := time.Date(2017, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	s := runWindow(t, 14, start, 120, 2*timeutil.SampleInterval, rec)
	if n := len(s.Incidents()); n != 0 {
		t.Errorf("quiet-year incidents = %d, want 0 (drift must not alarm)", n)
	}
	// The drifting rack's outlet reads high relative to its neighbors.
	drifting := topology.RackID{Row: 2, Col: 0xB}
	neighbor := topology.RackID{Row: 2, Col: 0xA}
	var driftSum, neighSum float64
	var driftN, neighN int
	db.EachRecord(func(r sensors.Record) {
		switch r.Rack {
		case drifting:
			driftSum += float64(r.OutletTemp)
			driftN++
		case neighbor:
			neighSum += float64(r.OutletTemp)
			neighN++
		}
	})
	if driftN == 0 || neighN == 0 {
		t.Fatal("missing telemetry")
	}
	if driftSum/float64(driftN)-neighSum/float64(neighN) < 0.15 {
		t.Errorf("drifting sensor should read visibly high: %v vs %v",
			driftSum/float64(driftN), neighSum/float64(neighN))
	}
}
