// Package ras models Mira's RAS (reliability, availability, serviceability)
// event log and the paper's failure-counting methodology: coolant monitor
// failures (CMFs) are deduplicated per rack over a six-hour window (a rack
// takes up to six hours to come back), non-CMF failures over a one-hour
// window, and cascaded storm messages are collapsed so that "1000 CMFs on
// eight racks within six hours" count as eight failures.
package ras

import (
	"fmt"
	"sort"
	"time"

	"mira/internal/topology"
)

// EventType categorizes a RAS event (paper Fig. 14b).
type EventType int

const (
	// CoolantMonitor is a coolant-monitor failure (CMF).
	CoolantMonitor EventType = iota
	// ACToDCPower is a Bulk Power Module conversion failure — half of all
	// post-CMF failures.
	ACToDCPower
	// BQC is a Blue Gene/Q compute-module failure.
	BQC
	// BQL is a Blue Gene/Q link-module failure.
	BQL
	// Card is a clock-card failure.
	Card
	// Software covers buggy updates and network-decision malfunctions.
	Software
	// Ethernet is an ethernet adapter card failure.
	Ethernet
	// Process covers background software daemons (< 2% of failures).
	Process
	// NumEventTypes is the category count.
	NumEventTypes
)

func (e EventType) String() string {
	switch e {
	case CoolantMonitor:
		return "coolant-monitor"
	case ACToDCPower:
		return "ac-to-dc-power"
	case BQC:
		return "bqc"
	case BQL:
		return "bql"
	case Card:
		return "card"
	case Software:
		return "software"
	case Ethernet:
		return "ethernet"
	case Process:
		return "process"
	default:
		return "unknown"
	}
}

// Severity mirrors the coolant-monitor severities at the log level.
type Severity int

const (
	Warn Severity = iota
	Fatal
)

func (s Severity) String() string {
	if s == Fatal {
		return "FATAL"
	}
	return "WARN"
}

// Event is one RAS log entry.
type Event struct {
	Time     time.Time
	Rack     topology.RackID
	Type     EventType
	Severity Severity
	Message  string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s %s rack %v: %s",
		e.Time.Format(time.RFC3339), e.Severity, e.Type, e.Rack, e.Message)
}

// IsCMF reports whether the event is a fatal coolant-monitor failure.
func (e Event) IsCMF() bool { return e.Type == CoolantMonitor && e.Severity == Fatal }

// Log is an append-mostly RAS event log.
type Log struct {
	events []Event
	sorted bool
}

// NewLog creates an empty log.
func NewLog() *Log { return &Log{sorted: true} }

// Append adds an event.
func (l *Log) Append(e Event) {
	if n := len(l.events); n > 0 && e.Time.Before(l.events[n-1].Time) {
		l.sorted = false
	}
	l.events = append(l.events, e)
}

// Len returns the event count.
func (l *Log) Len() int { return len(l.events) }

// Events returns the events in time order.
func (l *Log) Events() []Event {
	l.ensureSorted()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

func (l *Log) ensureSorted() {
	if !l.sorted {
		sort.SliceStable(l.events, func(i, j int) bool { return l.events[i].Time.Before(l.events[j].Time) })
		l.sorted = true
	}
}

// Between returns the events with timestamps in [from, to), in time order.
func (l *Log) Between(from, to time.Time) []Event {
	l.ensureSorted()
	lo := sort.Search(len(l.events), func(i int) bool { return !l.events[i].Time.Before(from) })
	hi := sort.Search(len(l.events), func(i int) bool { return !l.events[i].Time.Before(to) })
	out := make([]Event, hi-lo)
	copy(out, l.events[lo:hi])
	return out
}

// Deduplication windows from the paper's methodology.
const (
	// CMFWindow: a rack can take up to six hours to come back after a CMF,
	// so further CMFs on the same rack within six hours are the same
	// failure.
	CMFWindow = 6 * time.Hour
	// NonCMFWindow: a rack takes about one hour to come back after a
	// non-CMF failure.
	NonCMFWindow = time.Hour
)

// DedupCMF applies the paper's methodology to the log: it returns the fatal
// coolant-monitor failures with per-rack six-hour deduplication. Dedup is
// per rack, not system-wide, so a storm that fells eight racks counts as
// eight failures.
func (l *Log) DedupCMF() []Event {
	return dedup(l.Events(), CMFWindow, func(e Event) bool { return e.IsCMF() })
}

// DedupNonCMF returns the fatal non-coolant-monitor failures with per-rack
// one-hour deduplication.
func (l *Log) DedupNonCMF() []Event {
	return dedup(l.Events(), NonCMFWindow, func(e Event) bool {
		return e.Severity == Fatal && e.Type != CoolantMonitor
	})
}

func dedup(events []Event, window time.Duration, keep func(Event) bool) []Event {
	last := make(map[topology.RackID]time.Time)
	var out []Event
	for _, e := range events {
		if !keep(e) {
			continue
		}
		if prev, ok := last[e.Rack]; ok && e.Time.Sub(prev) < window {
			continue
		}
		last[e.Rack] = e.Time
		out = append(out, e)
	}
	return out
}

// CountByYear groups deduplicated events by calendar year.
func CountByYear(events []Event) map[int]int {
	out := make(map[int]int)
	for _, e := range events {
		out[e.Time.Year()]++
	}
	return out
}

// CountByRack groups deduplicated events by rack, indexed densely.
func CountByRack(events []Event) [topology.NumRacks]int {
	var out [topology.NumRacks]int
	for _, e := range events {
		out[e.Rack.Index()]++
	}
	return out
}

// CountByType groups events by type.
func CountByType(events []Event) map[EventType]int {
	out := make(map[EventType]int)
	for _, e := range events {
		out[e.Type]++
	}
	return out
}
