package ras

import (
	"strings"
	"testing"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
)

var t0 = time.Date(2016, 7, 4, 0, 0, 0, 0, timeutil.Chicago)

func cmf(rack topology.RackID, ts time.Time) Event {
	return Event{Time: ts, Rack: rack, Type: CoolantMonitor, Severity: Fatal, Message: "cmf"}
}

func TestEventStringsAndIsCMF(t *testing.T) {
	e := cmf(topology.RackID{Row: 1, Col: 8}, t0)
	if !e.IsCMF() {
		t.Error("fatal coolant-monitor event should be a CMF")
	}
	warn := Event{Time: t0, Rack: e.Rack, Type: CoolantMonitor, Severity: Warn}
	if warn.IsCMF() {
		t.Error("warn events are not CMFs")
	}
	other := Event{Time: t0, Rack: e.Rack, Type: ACToDCPower, Severity: Fatal}
	if other.IsCMF() {
		t.Error("non-coolant events are not CMFs")
	}
	s := e.String()
	if !strings.Contains(s, "coolant-monitor") || !strings.Contains(s, "(1,8)") {
		t.Errorf("Event.String = %q", s)
	}
	for et := EventType(0); et < NumEventTypes; et++ {
		if et.String() == "unknown" {
			t.Errorf("EventType %d has no name", int(et))
		}
	}
}

func TestLogOrdering(t *testing.T) {
	l := NewLog()
	r := topology.RackID{Row: 0, Col: 0}
	l.Append(cmf(r, t0.Add(2*time.Hour)))
	l.Append(cmf(r, t0)) // out of order
	l.Append(cmf(r, t0.Add(time.Hour)))
	ev := l.Events()
	if len(ev) != 3 || !ev[0].Time.Equal(t0) || !ev[2].Time.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("Events not sorted: %v", ev)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestBetween(t *testing.T) {
	l := NewLog()
	r := topology.RackID{Row: 0, Col: 0}
	for i := 0; i < 10; i++ {
		l.Append(cmf(r, t0.Add(time.Duration(i)*time.Hour)))
	}
	got := l.Between(t0.Add(3*time.Hour), t0.Add(6*time.Hour))
	if len(got) != 3 {
		t.Errorf("Between returned %d, want 3", len(got))
	}
}

func TestDedupCMFStorm(t *testing.T) {
	// A RAS storm: 1000 messages across 8 racks within minutes → 8 failures.
	l := NewLog()
	for i := 0; i < 1000; i++ {
		rack := topology.RackByIndex(i % 8)
		l.Append(cmf(rack, t0.Add(time.Duration(i)*time.Second)))
	}
	got := l.DedupCMF()
	if len(got) != 8 {
		t.Errorf("storm dedup = %d failures, want 8", len(got))
	}
}

func TestDedupCMFWindowBoundary(t *testing.T) {
	l := NewLog()
	r := topology.RackID{Row: 1, Col: 1}
	l.Append(cmf(r, t0))
	l.Append(cmf(r, t0.Add(5*time.Hour))) // inside window: suppressed
	l.Append(cmf(r, t0.Add(7*time.Hour))) // outside window: counted
	got := l.DedupCMF()
	if len(got) != 2 {
		t.Errorf("dedup = %d, want 2", len(got))
	}
}

func TestDedupIsPerRack(t *testing.T) {
	l := NewLog()
	a := topology.RackID{Row: 0, Col: 1}
	b := topology.RackID{Row: 0, Col: 2}
	l.Append(cmf(a, t0))
	l.Append(cmf(b, t0.Add(time.Minute))) // different rack: counted
	if got := l.DedupCMF(); len(got) != 2 {
		t.Errorf("per-rack dedup = %d, want 2", len(got))
	}
}

func TestDedupIgnoresWarnsAndNonCMF(t *testing.T) {
	l := NewLog()
	r := topology.RackID{Row: 2, Col: 3}
	l.Append(Event{Time: t0, Rack: r, Type: CoolantMonitor, Severity: Warn})
	l.Append(Event{Time: t0.Add(time.Minute), Rack: r, Type: BQL, Severity: Fatal})
	if got := l.DedupCMF(); len(got) != 0 {
		t.Errorf("warns/non-CMF should not count as CMFs: %v", got)
	}
	if got := l.DedupNonCMF(); len(got) != 1 {
		t.Errorf("DedupNonCMF = %d, want 1", len(got))
	}
}

func TestDedupNonCMFWindow(t *testing.T) {
	l := NewLog()
	r := topology.RackID{Row: 1, Col: 5}
	l.Append(Event{Time: t0, Rack: r, Type: ACToDCPower, Severity: Fatal})
	l.Append(Event{Time: t0.Add(30 * time.Minute), Rack: r, Type: ACToDCPower, Severity: Fatal})
	l.Append(Event{Time: t0.Add(90 * time.Minute), Rack: r, Type: BQC, Severity: Fatal})
	if got := l.DedupNonCMF(); len(got) != 2 {
		t.Errorf("non-CMF dedup = %d, want 2", len(got))
	}
}

func TestCounters(t *testing.T) {
	events := []Event{
		cmf(topology.RackID{Row: 1, Col: 8}, time.Date(2016, 3, 1, 0, 0, 0, 0, timeutil.Chicago)),
		cmf(topology.RackID{Row: 1, Col: 8}, time.Date(2016, 9, 1, 0, 0, 0, 0, timeutil.Chicago)),
		cmf(topology.RackID{Row: 2, Col: 7}, time.Date(2019, 1, 1, 0, 0, 0, 0, timeutil.Chicago)),
	}
	byYear := CountByYear(events)
	if byYear[2016] != 2 || byYear[2019] != 1 {
		t.Errorf("CountByYear = %v", byYear)
	}
	byRack := CountByRack(events)
	if byRack[topology.HumidityHotspot.Index()] != 2 {
		t.Errorf("CountByRack[(1,8)] = %d", byRack[topology.HumidityHotspot.Index()])
	}
	byType := CountByType(events)
	if byType[CoolantMonitor] != 3 {
		t.Errorf("CountByType = %v", byType)
	}
}
