// Package sensors models the Blue Gene/Q Coolant Monitor: the per-rack
// sensor module beside the coolant inlet and outlet lines that samples data
// center temperature and humidity, coolant flow rate, inlet and outlet
// coolant temperatures, and rack power every 300 seconds, stores
// calibration data, and raises warn/fatal alarms when readings cross the
// configured thresholds (paper §II).
package sensors

import (
	"fmt"
	"math/rand"
	"time"

	"mira/internal/topology"
	"mira/internal/units"
)

// Record is one coolant-monitor sample for one rack — the telemetry schema
// every analysis in this repository consumes.
type Record struct {
	Time time.Time
	Rack topology.RackID
	// DCTemperature and DCHumidity describe the data-center conditions near
	// the rack (not node level).
	DCTemperature units.Fahrenheit
	DCHumidity    units.RelativeHumidity
	// Flow is the internal-loop coolant flow rate.
	Flow units.GPM
	// InletTemp and OutletTemp are the coolant temperatures at the rack's
	// inlet and outlet ports.
	InletTemp  units.Fahrenheit
	OutletTemp units.Fahrenheit
	// Power is the aggregate draw of the rack's four power enclosures.
	Power units.Watts
}

// Metric identifies one channel of the record for queries and feature
// extraction.
type Metric int

const (
	MetricDCTemperature Metric = iota
	MetricDCHumidity
	MetricFlow
	MetricInletTemp
	MetricOutletTemp
	MetricPower
	// NumMetrics is the channel count.
	NumMetrics
)

func (m Metric) String() string {
	switch m {
	case MetricDCTemperature:
		return "dc_temperature"
	case MetricDCHumidity:
		return "dc_humidity"
	case MetricFlow:
		return "coolant_flow"
	case MetricInletTemp:
		return "inlet_temp"
	case MetricOutletTemp:
		return "outlet_temp"
	case MetricPower:
		return "power"
	default:
		return "unknown"
	}
}

// AllMetrics lists every channel.
func AllMetrics() []Metric {
	return []Metric{MetricDCTemperature, MetricDCHumidity, MetricFlow, MetricInletTemp, MetricOutletTemp, MetricPower}
}

// Value extracts one channel from a record.
func (r Record) Value(m Metric) float64 {
	switch m {
	case MetricDCTemperature:
		return float64(r.DCTemperature)
	case MetricDCHumidity:
		return float64(r.DCHumidity)
	case MetricFlow:
		return float64(r.Flow)
	case MetricInletTemp:
		return float64(r.InletTemp)
	case MetricOutletTemp:
		return float64(r.OutletTemp)
	case MetricPower:
		return float64(r.Power)
	default:
		return 0
	}
}

// Dewpoint returns the dewpoint implied by the record's ambient channels.
func (r Record) Dewpoint() units.Fahrenheit {
	return units.Dewpoint(r.DCTemperature, r.DCHumidity)
}

// Calibration holds the per-channel additive offsets stored alongside the
// monitor (the coolant monitor "also stores the calibration data used to
// calibrate the sensors").
type Calibration struct {
	Offset [NumMetrics]float64
}

// Monitor is one rack's coolant-monitor module.
type Monitor struct {
	Rack topology.RackID
	Cal  Calibration
	rng  *rand.Rand

	// drift models the single malfunctioning sensor the paper mentions
	// (one sensor on one rack was replaced during the six years): a slow
	// additive drift on one channel until the replacement date.
	driftChannel  Metric
	driftPerDay   float64
	driftStart    time.Time
	driftReplaced time.Time
}

// NewMonitor creates the monitor for a rack with near-zero factory
// calibration offsets.
func NewMonitor(rack topology.RackID, seed int64) *Monitor {
	rng := rand.New(rand.NewSource(seed ^ int64(rack.Index()*0x9E37)))
	m := &Monitor{Rack: rack, rng: rng}
	for i := range m.Cal.Offset {
		m.Cal.Offset[i] = rng.NormFloat64() * 0.02
	}
	return m
}

// InjectDrift configures this monitor's sensor to drift on one channel from
// start until it is replaced (offset returns to calibration afterwards).
func (m *Monitor) InjectDrift(channel Metric, perDay float64, start, replaced time.Time) {
	m.driftChannel = channel
	m.driftPerDay = perDay
	m.driftStart = start
	m.driftReplaced = replaced
}

// noiseScale is the measurement noise per channel.
func noiseScale(m Metric) float64 {
	switch m {
	case MetricDCTemperature:
		return 0.25
	case MetricDCHumidity:
		return 0.35
	case MetricFlow:
		return 0.10
	case MetricInletTemp:
		return 0.08
	case MetricOutletTemp:
		return 0.12
	case MetricPower:
		return 250 // watts
	default:
		return 0
	}
}

// Sample turns ground-truth values into a measured record: calibration
// offsets, sensor noise, and any active drift are applied.
func (m *Monitor) Sample(truth Record) Record {
	out := truth
	out.Rack = m.Rack
	apply := func(metric Metric, v float64) float64 {
		v += m.Cal.Offset[metric]
		v += m.rng.NormFloat64() * noiseScale(metric)
		if m.driftPerDay != 0 && metric == m.driftChannel &&
			!truth.Time.Before(m.driftStart) && truth.Time.Before(m.driftReplaced) {
			days := truth.Time.Sub(m.driftStart).Hours() / 24
			v += m.driftPerDay * days
		}
		return v
	}
	out.DCTemperature = units.Fahrenheit(apply(MetricDCTemperature, float64(truth.DCTemperature)))
	out.DCHumidity = units.RelativeHumidity(apply(MetricDCHumidity, float64(truth.DCHumidity))).Clamp()
	out.Flow = units.GPM(apply(MetricFlow, float64(truth.Flow)))
	out.InletTemp = units.Fahrenheit(apply(MetricInletTemp, float64(truth.InletTemp)))
	out.OutletTemp = units.Fahrenheit(apply(MetricOutletTemp, float64(truth.OutletTemp)))
	out.Power = units.Watts(apply(MetricPower, float64(truth.Power)))
	return out
}

// Severity of an alarm (paper §II: warn designates low-risk situations,
// fatal identifies a severe event that leads to a rack-level failure).
type Severity int

const (
	Warn Severity = iota
	Fatal
)

func (s Severity) String() string {
	if s == Fatal {
		return "FATAL"
	}
	return "WARN"
}

// Alarm is one threshold violation raised by the coolant monitor.
type Alarm struct {
	Time     time.Time
	Rack     topology.RackID
	Severity Severity
	Reason   string
}

func (a Alarm) String() string {
	return fmt.Sprintf("%s %s rack %v: %s", a.Time.Format(time.RFC3339), a.Severity, a.Rack, a.Reason)
}

// Thresholds are the alarm limits the coolant monitor enforces.
type Thresholds struct {
	// FlowFatalFraction: flow below this fraction of nominal rack flow is
	// fatal (solenoid-closing territory).
	FlowFatalFraction float64
	// FlowWarnFraction: flow below this fraction raises a warning.
	FlowWarnFraction float64
	// NominalRackFlow is the reference flow.
	NominalRackFlow units.GPM
	// InletFatalLow/High bound the inlet coolant temperature.
	InletFatalLow  units.Fahrenheit
	InletFatalHigh units.Fahrenheit
	// InletWarnLow/High are the warning bounds.
	InletWarnLow  units.Fahrenheit
	InletWarnHigh units.Fahrenheit
	// CondensationFatalMargin: a dewpoint within this many °F of the
	// data-center temperature is fatal (condensation on hardware). The
	// paper: the failure triggers when the dewpoint "falls below or becomes
	// almost equal to the data center temperature".
	CondensationFatalMargin float64
	// CondensationWarnMargin raises a warning first.
	CondensationWarnMargin float64
}

// DefaultThresholds returns the production alarm configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{
		FlowFatalFraction:       0.62,
		FlowWarnFraction:        0.80,
		NominalRackFlow:         26.5,
		InletFatalLow:           57,
		InletFatalHigh:          71,
		InletWarnLow:            60,
		InletWarnHigh:           68.5,
		CondensationFatalMargin: 2.0,
		CondensationWarnMargin:  5.0,
	}
}

// Check evaluates a record against the thresholds and returns any alarms,
// most severe first.
func (t Thresholds) Check(r Record) []Alarm {
	var alarms []Alarm
	add := func(sev Severity, reason string) {
		alarms = append(alarms, Alarm{Time: r.Time, Rack: r.Rack, Severity: sev, Reason: reason})
	}
	nominal := float64(t.NominalRackFlow)
	switch flow := float64(r.Flow); {
	case flow < nominal*t.FlowFatalFraction:
		add(Fatal, fmt.Sprintf("coolant flow %.1f GPM below fatal threshold %.1f", flow, nominal*t.FlowFatalFraction))
	case flow < nominal*t.FlowWarnFraction:
		add(Warn, fmt.Sprintf("coolant flow %.1f GPM below warn threshold %.1f", flow, nominal*t.FlowWarnFraction))
	}
	switch {
	case r.InletTemp < t.InletFatalLow || r.InletTemp > t.InletFatalHigh:
		add(Fatal, fmt.Sprintf("inlet temperature %v outside fatal range [%v, %v]", r.InletTemp, t.InletFatalLow, t.InletFatalHigh))
	case r.InletTemp < t.InletWarnLow || r.InletTemp > t.InletWarnHigh:
		add(Warn, fmt.Sprintf("inlet temperature %v outside warn range [%v, %v]", r.InletTemp, t.InletWarnLow, t.InletWarnHigh))
	}
	switch margin := units.CondensationMargin(r.DCTemperature, r.DCHumidity); {
	case margin < t.CondensationFatalMargin:
		add(Fatal, fmt.Sprintf("dewpoint within %.1f°F of DC temperature: condensation risk", margin))
	case margin < t.CondensationWarnMargin:
		add(Warn, fmt.Sprintf("dewpoint margin %.1f°F shrinking", margin))
	}
	// Most severe first.
	for i := range alarms {
		if alarms[i].Severity == Fatal {
			alarms[0], alarms[i] = alarms[i], alarms[0]
			break
		}
	}
	return alarms
}

// HasFatal reports whether any alarm in the list is fatal.
func HasFatal(alarms []Alarm) bool {
	for _, a := range alarms {
		if a.Severity == Fatal {
			return true
		}
	}
	return false
}
