package sensors

import (
	"math"
	"strings"
	"testing"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

func healthyRecord(ts time.Time) Record {
	return Record{
		Time:          ts,
		Rack:          topology.RackID{Row: 1, Col: 2},
		DCTemperature: 80,
		DCHumidity:    32,
		Flow:          26.5,
		InletTemp:     64,
		OutletTemp:    79,
		Power:         units.KW(57),
	}
}

var ts0 = time.Date(2015, 6, 1, 12, 0, 0, 0, timeutil.Chicago)

func TestMetricValueRoundTrip(t *testing.T) {
	r := healthyRecord(ts0)
	cases := map[Metric]float64{
		MetricDCTemperature: 80,
		MetricDCHumidity:    32,
		MetricFlow:          26.5,
		MetricInletTemp:     64,
		MetricOutletTemp:    79,
		MetricPower:         57000,
	}
	for m, want := range cases {
		if got := r.Value(m); got != want {
			t.Errorf("Value(%v) = %v, want %v", m, got, want)
		}
	}
	if len(AllMetrics()) != int(NumMetrics) {
		t.Errorf("AllMetrics count = %d", len(AllMetrics()))
	}
}

func TestMetricStrings(t *testing.T) {
	want := map[Metric]string{
		MetricDCTemperature: "dc_temperature",
		MetricDCHumidity:    "dc_humidity",
		MetricFlow:          "coolant_flow",
		MetricInletTemp:     "inlet_temp",
		MetricOutletTemp:    "outlet_temp",
		MetricPower:         "power",
	}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("Metric(%d).String() = %q, want %q", int(m), m.String(), w)
		}
	}
}

func TestRecordDewpoint(t *testing.T) {
	r := healthyRecord(ts0)
	dp := r.Dewpoint()
	if float64(dp) < 44 || float64(dp) > 52 {
		t.Errorf("Dewpoint = %v, want ≈48°F for 80°F/32RH", dp)
	}
}

func TestMonitorSampleNoise(t *testing.T) {
	m := NewMonitor(topology.RackID{Row: 1, Col: 2}, 1)
	truth := healthyRecord(ts0)
	// Over many samples, the measured mean should match truth closely and
	// noise should be visible but small.
	var sumIn, sumSq float64
	n := 2000
	for i := 0; i < n; i++ {
		s := m.Sample(truth)
		sumIn += float64(s.InletTemp)
		d := float64(s.InletTemp) - 64
		sumSq += d * d
	}
	mean := sumIn / float64(n)
	if math.Abs(mean-64) > 0.05 {
		t.Errorf("measured inlet mean = %v, want ≈64", mean)
	}
	std := math.Sqrt(sumSq / float64(n))
	if std < 0.02 || std > 0.2 {
		t.Errorf("measured inlet noise = %v, want ≈0.08", std)
	}
}

func TestMonitorDriftAndReplacement(t *testing.T) {
	m := NewMonitor(topology.RackID{Row: 2, Col: 5}, 2)
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	replaced := time.Date(2017, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	m.InjectDrift(MetricOutletTemp, 0.01, start, replaced)

	sample := func(ts time.Time) float64 {
		truth := healthyRecord(ts)
		var sum float64
		for i := 0; i < 200; i++ {
			sum += float64(m.Sample(truth).OutletTemp)
		}
		return sum / 200
	}
	before := sample(time.Date(2015, 6, 1, 0, 0, 0, 0, timeutil.Chicago))
	during := sample(time.Date(2017, 1, 1, 0, 0, 0, 0, timeutil.Chicago)) // 366 days in
	after := sample(time.Date(2018, 1, 1, 0, 0, 0, 0, timeutil.Chicago))
	if during-before < 2.5 {
		t.Errorf("drift should accumulate: before=%v during=%v", before, during)
	}
	if math.Abs(after-before) > 0.3 {
		t.Errorf("replacement should reset readings: before=%v after=%v", before, after)
	}
}

func TestThresholdsHealthy(t *testing.T) {
	th := DefaultThresholds()
	if alarms := th.Check(healthyRecord(ts0)); len(alarms) != 0 {
		t.Errorf("healthy record should not alarm, got %v", alarms)
	}
}

func TestThresholdsFlowAlarms(t *testing.T) {
	th := DefaultThresholds()
	r := healthyRecord(ts0)
	r.Flow = 20 // below 80% of 26.5 (=21.2), above 62% (=16.4)
	alarms := th.Check(r)
	if len(alarms) != 1 || alarms[0].Severity != Warn {
		t.Fatalf("want one warn, got %v", alarms)
	}
	r.Flow = 15
	alarms = th.Check(r)
	if !HasFatal(alarms) {
		t.Fatalf("want fatal flow alarm, got %v", alarms)
	}
	if !strings.Contains(alarms[0].Reason, "flow") {
		t.Errorf("reason = %q", alarms[0].Reason)
	}
}

func TestThresholdsInletAlarms(t *testing.T) {
	th := DefaultThresholds()
	r := healthyRecord(ts0)
	r.InletTemp = 59 // warn zone
	if alarms := th.Check(r); len(alarms) != 1 || alarms[0].Severity != Warn {
		t.Fatalf("want warn, got %v", alarms)
	}
	r.InletTemp = 55 // fatal low
	if alarms := th.Check(r); !HasFatal(alarms) {
		t.Fatalf("want fatal, got %v", alarms)
	}
	r.InletTemp = 72.5 // fatal high
	if alarms := th.Check(r); !HasFatal(alarms) {
		t.Fatalf("want fatal, got %v", alarms)
	}
}

func TestThresholdsCondensation(t *testing.T) {
	th := DefaultThresholds()
	r := healthyRecord(ts0)
	r.DCHumidity = 97 // dewpoint ≈ DC temperature
	alarms := th.Check(r)
	if !HasFatal(alarms) {
		t.Fatalf("condensation should be fatal, got %v", alarms)
	}
	if !strings.Contains(alarms[0].Reason, "condensation") {
		t.Errorf("reason = %q", alarms[0].Reason)
	}
	// Moderate humidity: warning first.
	r.DCHumidity = 86
	alarms = th.Check(r)
	if len(alarms) == 0 || HasFatal(alarms) {
		t.Fatalf("want warn-only for shrinking margin, got %v", alarms)
	}
}

func TestFatalSortsFirst(t *testing.T) {
	th := DefaultThresholds()
	r := healthyRecord(ts0)
	r.Flow = 20      // warn
	r.InletTemp = 55 // fatal
	alarms := th.Check(r)
	if len(alarms) < 2 {
		t.Fatalf("want two alarms, got %v", alarms)
	}
	if alarms[0].Severity != Fatal {
		t.Errorf("fatal should sort first: %v", alarms)
	}
}

func TestAlarmString(t *testing.T) {
	a := Alarm{Time: ts0, Rack: topology.RackID{Row: 0, Col: 13}, Severity: Fatal, Reason: "test"}
	s := a.String()
	if !strings.Contains(s, "FATAL") || !strings.Contains(s, "(0,D)") {
		t.Errorf("Alarm.String = %q", s)
	}
	if Warn.String() != "WARN" {
		t.Error("Warn.String")
	}
}

func TestHasFatalEmpty(t *testing.T) {
	if HasFatal(nil) {
		t.Error("empty alarm list should not be fatal")
	}
}

func TestSampleClampHumidity(t *testing.T) {
	m := NewMonitor(topology.RackID{Row: 0, Col: 0}, 3)
	truth := healthyRecord(ts0)
	truth.DCHumidity = 100
	for i := 0; i < 100; i++ {
		if s := m.Sample(truth); s.DCHumidity > 100 {
			t.Fatalf("sampled humidity %v exceeds 100", s.DCHumidity)
		}
	}
}
