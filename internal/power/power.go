// Package power models Mira's electrical side: Bulk Power Module (BPM)
// AC→DC conversion per rack, idle and dynamic node power, fan power, and the
// system-level aggregate including the air-cooled ION racks and auxiliary
// equipment.
//
// The model reproduces the paper's power characteristics: ≈2.5 MW system
// draw at 80% utilization in 2014 rising to ≈2.9 MW at 93% in 2019, up to
// 15% rack-to-rack variation, and the imperfect (≈0.45) correlation between
// rack power and rack utilization caused by job CPU-intensity differences.
package power

import (
	"math/rand"
	"time"

	"mira/internal/scheduler"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// Electrical constants of the model, calibrated against the paper's
// system-level numbers.
const (
	// RackIdle is the power a powered-on rack draws with no work: DC
	// converters, clock distribution, coolant pumps, standby node power.
	RackIdle units.Watts = 21000
	// MidplaneDynamic is the additional draw of one midplane running a
	// nominal-intensity job.
	MidplaneDynamic units.Watts = 15500
	// FanPerRack is the draw of the fans in the rack's power enclosures.
	FanPerRack units.Watts = 1200
	// BPMEfficiency is the AC→DC conversion efficiency of the Bulk Power
	// Modules; the facility meters the AC side.
	BPMEfficiency = 0.94
	// AuxiliaryBase covers the six air-cooled ION racks and service
	// equipment.
	AuxiliaryBase units.Watts = 130000
)

// Model computes rack and system power from scheduler state.
type Model struct {
	// rackBias is the per-rack CPU-intensity bias: some racks
	// systematically attract more CPU-intensive jobs (paper §IV-A: rack
	// (0,D) draws the most power despite not having the highest
	// utilization).
	rackBias [topology.NumRacks]float64
	// EfficiencyDriftPerYear models the slow growth of per-node draw as
	// applications became better optimized over Mira's lifetime
	// (default +0.8%/year).
	EfficiencyDriftPerYear float64
}

// NewModel creates a power model. The seed shapes the per-rack intensity
// bias field.
func NewModel(seed int64) *Model {
	m := &Model{EfficiencyDriftPerYear: 0.008}
	rng := rand.New(rand.NewSource(seed))
	for i := range m.rackBias {
		m.rackBias[i] = 1 + 0.04*rng.NormFloat64()
		if m.rackBias[i] < 0.88 {
			m.rackBias[i] = 0.88
		}
		if m.rackBias[i] > 1.12 {
			m.rackBias[i] = 1.12
		}
	}
	// Rack (0,D) hosts the most CPU-intensive workloads on Mira.
	m.rackBias[topology.HotRack.Index()] = 1.13
	return m
}

// RackBias returns the CPU-intensity bias of a rack (≈1.0).
func (m *Model) RackBias(r topology.RackID) float64 { return m.rackBias[r.Index()] }

// drift returns the multiplicative power drift at time t.
func (m *Model) drift(t time.Time) float64 {
	years := t.Sub(timeutil.ProductionStart).Hours() / (365.25 * 24)
	return 1 + m.EfficiencyDriftPerYear*years
}

// RackPower returns the AC-side power drawn by one rack given its two
// midplane snapshots. A rack that is Down draws nothing.
func (m *Model) RackPower(r topology.RackID, mids []scheduler.MidplaneSnapshot, t time.Time) units.Watts {
	downCount := 0
	var dynamic units.Watts
	bias := m.rackBias[r.Index()]
	for _, mp := range mids {
		switch mp.State {
		case scheduler.Down:
			downCount++
		case scheduler.Busy:
			dynamic += units.Watts(float64(MidplaneDynamic) * mp.Intensity * bias)
		case scheduler.Burning:
			// Burner jobs burn cycles without the memory/network activity
			// of production work; bias does not apply.
			dynamic += units.Watts(float64(MidplaneDynamic) * mp.Intensity)
		}
	}
	if downCount == len(mids) {
		return 0 // solenoid closed, power supply off
	}
	dc := RackIdle + dynamic + FanPerRack
	// Partially-down racks idle the affected midplane's share.
	if downCount > 0 {
		frac := 1 - float64(downCount)/float64(len(mids))*0.4
		dc = units.Watts(float64(dc) * frac)
	}
	ac := units.Watts(float64(dc) / BPMEfficiency * m.drift(t))
	return ac
}

// SystemPower returns the total facility-metered power: all 48 compute racks
// plus auxiliary equipment. The snapshot must cover all midplanes in
// scheduler order.
func (m *Model) SystemPower(snap []scheduler.MidplaneSnapshot, t time.Time) units.Watts {
	total := AuxiliaryBase
	for _, r := range topology.AllRacks() {
		base := r.Index() * topology.MidplanesPerRack
		total += m.RackPower(r, snap[base:base+topology.MidplanesPerRack], t)
	}
	return total
}

// RackHeatToCoolant returns the portion of a rack's power dissipated into
// the internal water loop. The Blue Gene/Q design removes ≈90% of rack heat
// through the coolant; the rest escapes to room air.
func RackHeatToCoolant(rackPower units.Watts) units.Watts {
	return units.Watts(float64(rackPower) * 0.90)
}
