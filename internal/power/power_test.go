package power

import (
	"math"
	"testing"
	"time"

	"mira/internal/scheduler"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
	"mira/internal/workload"
)

func snapAll(state scheduler.MidplaneState, intensity float64) []scheduler.MidplaneSnapshot {
	out := make([]scheduler.MidplaneSnapshot, topology.NumMidplanes)
	for i := range out {
		out[i] = scheduler.MidplaneSnapshot{State: state, Intensity: intensity}
	}
	return out
}

var t2014 = timeutil.ProductionStart

func TestRackPowerStates(t *testing.T) {
	m := NewModel(1)
	r := topology.RackID{Row: 1, Col: 1}

	idle := m.RackPower(r, []scheduler.MidplaneSnapshot{{State: scheduler.Idle}, {State: scheduler.Idle}}, t2014)
	busy := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1}, {State: scheduler.Busy, Intensity: 1},
	}, t2014)
	down := m.RackPower(r, []scheduler.MidplaneSnapshot{{State: scheduler.Down}, {State: scheduler.Down}}, t2014)

	if down != 0 {
		t.Errorf("down rack power = %v, want 0", down)
	}
	if idle <= 0 || busy <= idle {
		t.Errorf("power ordering wrong: idle=%v busy=%v", idle, busy)
	}
	// A fully busy rack draws ~55-65 kW AC.
	if busy.Kilowatts() < 50 || busy.Kilowatts() > 70 {
		t.Errorf("busy rack power = %v, want ≈60 kW", busy)
	}
	// Idle rack still draws the idle floor through the BPM.
	wantIdle := float64(RackIdle+FanPerRack) / BPMEfficiency
	if math.Abs(float64(idle)-wantIdle) > 1 {
		t.Errorf("idle rack power = %v, want %v", idle, units.Watts(wantIdle))
	}
}

func TestBurnerDrawsLessThanProduction(t *testing.T) {
	m := NewModel(1)
	r := topology.RackID{Row: 1, Col: 1}
	prod := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1}, {State: scheduler.Busy, Intensity: 1},
	}, t2014)
	burn := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Burning, Intensity: workload.BurnerIntensity},
		{State: scheduler.Burning, Intensity: workload.BurnerIntensity},
	}, t2014)
	if burn >= prod {
		t.Errorf("burner power %v should be below production %v", burn, prod)
	}
	// The gap drives the paper's 6% Monday power dip.
	if ratio := float64(burn) / float64(prod); ratio > 0.85 || ratio < 0.5 {
		t.Errorf("burner/production ratio = %v, want ≈0.7", ratio)
	}
}

func TestIntensityAffectsPowerNotUtilization(t *testing.T) {
	m := NewModel(1)
	r := topology.RackID{Row: 2, Col: 2}
	low := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 0.7}, {State: scheduler.Busy, Intensity: 0.7},
	}, t2014)
	high := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1.3}, {State: scheduler.Busy, Intensity: 1.3},
	}, t2014)
	if high <= low {
		t.Error("higher intensity must draw more power")
	}
	if (float64(high)-float64(low))/float64(low) < 0.15 {
		t.Error("intensity should have a substantial power effect")
	}
}

func TestHotRackBias(t *testing.T) {
	m := NewModel(3)
	if m.RackBias(topology.HotRack) < 1.10 {
		t.Errorf("rack (0,D) bias = %v, want >= 1.10", m.RackBias(topology.HotRack))
	}
	// All biases within the clip range.
	for _, r := range topology.AllRacks() {
		b := m.RackBias(r)
		if b < 0.85 || b > 1.15 {
			t.Errorf("rack %v bias = %v out of range", r, b)
		}
	}
}

func TestSystemPowerCalibration(t *testing.T) {
	m := NewModel(2)
	// 2014: ~80% utilization → ≈2.5 MW.
	snap2014 := snapAll(scheduler.Idle, 0)
	n80 := topology.NumMidplanes * 80 / 100
	for i := 0; i < n80; i++ {
		snap2014[i] = scheduler.MidplaneSnapshot{State: scheduler.Busy, Intensity: 1}
	}
	p2014 := m.SystemPower(snap2014, t2014)
	if p2014.Megawatts() < 2.30 || p2014.Megawatts() > 2.70 {
		t.Errorf("2014 system power = %v, want ≈2.5 MW", p2014)
	}
	// 2019: ~93% utilization → ≈2.9 MW.
	snap2019 := snapAll(scheduler.Idle, 0)
	n93 := topology.NumMidplanes * 93 / 100
	for i := 0; i < n93; i++ {
		snap2019[i] = scheduler.MidplaneSnapshot{State: scheduler.Busy, Intensity: 1}
	}
	t2019 := time.Date(2019, 7, 1, 0, 0, 0, 0, timeutil.Chicago)
	p2019 := m.SystemPower(snap2019, t2019)
	if p2019.Megawatts() < 2.70 || p2019.Megawatts() > 3.10 {
		t.Errorf("2019 system power = %v, want ≈2.9 MW", p2019)
	}
	if p2019 <= p2014 {
		t.Error("system power should grow over the years")
	}
	// Well under the 6 MW provisioned capacity, near the 4 MW average load
	// the paper quotes for the whole BG/Q installation.
	if p2019.Megawatts() > 6 {
		t.Error("system power exceeds provisioned capacity")
	}
}

func TestSystemPowerFullyDown(t *testing.T) {
	m := NewModel(2)
	p := m.SystemPower(snapAll(scheduler.Down, 0), t2014)
	if p != AuxiliaryBase {
		t.Errorf("all-down system power = %v, want auxiliary only %v", p, AuxiliaryBase)
	}
}

func TestDriftGrowsPower(t *testing.T) {
	m := NewModel(4)
	r := topology.RackID{Row: 0, Col: 0}
	mids := []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1}, {State: scheduler.Busy, Intensity: 1},
	}
	early := m.RackPower(r, mids, t2014)
	late := m.RackPower(r, mids, time.Date(2019, 12, 1, 0, 0, 0, 0, timeutil.Chicago))
	growth := (float64(late) - float64(early)) / float64(early)
	if growth < 0.03 || growth > 0.08 {
		t.Errorf("six-year drift = %v, want ≈4.7%%", growth)
	}
}

func TestPartiallyDownRack(t *testing.T) {
	m := NewModel(5)
	r := topology.RackID{Row: 1, Col: 5}
	full := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1}, {State: scheduler.Busy, Intensity: 1},
	}, t2014)
	half := m.RackPower(r, []scheduler.MidplaneSnapshot{
		{State: scheduler.Busy, Intensity: 1}, {State: scheduler.Down},
	}, t2014)
	if half >= full || half <= 0 {
		t.Errorf("partially-down rack power = %v, full = %v", half, full)
	}
}

func TestRackHeatToCoolant(t *testing.T) {
	h := RackHeatToCoolant(units.KW(60))
	if h.Kilowatts() != 54 {
		t.Errorf("heat to coolant = %v, want 54 kW", h)
	}
}

func TestRackBiasDeterministic(t *testing.T) {
	a, b := NewModel(7), NewModel(7)
	for _, r := range topology.AllRacks() {
		if a.RackBias(r) != b.RackBias(r) {
			t.Fatal("bias field should be deterministic")
		}
	}
}
