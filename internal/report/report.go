// Package report renders analysis results as terminal-friendly text:
// aligned tables, Unicode sparklines for time series, and rack-grid
// heatmaps for the spatial figures. The cmd tools use it to print the
// paper's figures legibly without any plotting dependency.
package report

import (
	"fmt"
	"math"
	"strings"

	"mira/internal/topology"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// sparkLevels are the eighth-block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line Unicode sparkline, scaling to
// the series' own min..max. NaNs render as spaces; an empty or constant
// series renders mid-level blocks.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	out := make([]rune, 0, len(xs))
	for _, x := range xs {
		switch {
		case math.IsNaN(x):
			out = append(out, ' ')
		case hi == lo:
			out = append(out, sparkLevels[3])
		default:
			idx := int((x - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			out = append(out, sparkLevels[idx])
		}
	}
	return string(out)
}

// heatLevels are the shading characters used by RackHeatmap, light to dark.
var heatLevels = []rune(" ░▒▓█")

// RackHeatmap renders a per-rack value field as the 3×16 machine-floor
// grid, one shaded cell per rack, scaled to the field's own range. vals is
// indexed by the dense rack index.
func RackHeatmap(vals []float64) string {
	if len(vals) != topology.NumRacks {
		return fmt.Sprintf("(heatmap requires %d values, got %d)", topology.NumRacks, len(vals))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	b.WriteString("     0 1 2 3 4 5 6 7 8 9 A B C D E F\n")
	for row := 0; row < topology.Rows; row++ {
		fmt.Fprintf(&b, "row%d ", row)
		for col := 0; col < topology.ColsPerRow; col++ {
			v := vals[topology.RackID{Row: row, Col: col}.Index()]
			var r rune
			switch {
			case math.IsNaN(v):
				r = '?'
			case hi == lo:
				r = heatLevels[2]
			default:
				r = heatLevels[int((v-lo)/(hi-lo)*float64(len(heatLevels)-1))]
			}
			b.WriteRune(r)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "     scale %s=%.4g .. %s=%.4g\n", string(heatLevels[0]), lo, string(heatLevels[len(heatLevels)-1]), hi)
	return b.String()
}

// Bar renders a horizontal bar of width proportional to frac in [0, 1].
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
