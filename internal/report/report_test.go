package report

import (
	"math"
	"strings"
	"testing"

	"mira/internal/topology"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("month", "power(MW)", "util(%)")
	tb.AddRow("1", "2.906", "99.0")
	tb.AddRow("12", "2.947", "100.0")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "month") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: the power column starts at the same offset everywhere.
	idx0 := strings.Index(lines[0], "power")
	idx2 := strings.Index(lines[2], "2.906")
	if idx0 != idx2 {
		t.Errorf("misaligned columns: %d vs %d\n%s", idx0, idx2, out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cells should be dropped")
	}
	if !strings.Contains(out, "only") {
		t.Error("short rows should render")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 || strings.ContainsRune(flat, '█') {
		t.Errorf("flat sparkline = %q", flat)
	}
	withNaN := Sparkline([]float64{0, math.NaN(), 1})
	if []rune(withNaN)[1] != ' ' {
		t.Errorf("NaN should render as space: %q", withNaN)
	}
}

func TestRackHeatmap(t *testing.T) {
	vals := make([]float64, topology.NumRacks)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := RackHeatmap(vals)
	if !strings.Contains(out, "row0") || !strings.Contains(out, "row2") {
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "scale") {
		t.Error("missing scale legend")
	}
	// The minimum (rack (0,0)) renders light; the maximum (rack (2,F)) dark.
	lines := strings.Split(out, "\n")
	row0 := []rune(lines[1])
	row2 := []rune(lines[3])
	if row0[5] == '█' {
		t.Error("minimum cell should be light")
	}
	if row2[len(row2)-2] != '█' {
		t.Errorf("maximum cell should be dark: %q", string(row2))
	}
	// Wrong length is reported, not panicked.
	if !strings.Contains(RackHeatmap([]float64{1, 2}), "requires") {
		t.Error("length mismatch should be reported")
	}
}

func TestRackHeatmapDegenerate(t *testing.T) {
	vals := make([]float64, topology.NumRacks)
	for i := range vals {
		vals[i] = 7 // constant
	}
	vals[3] = math.NaN()
	out := RackHeatmap(vals)
	if !strings.Contains(out, "?") {
		t.Error("NaN cell should render '?'")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(0, 4); got != "...." {
		t.Errorf("Bar(0) = %q", got)
	}
	if got := Bar(1.5, 4); got != "####" {
		t.Errorf("Bar clamps high: %q", got)
	}
	if got := Bar(math.NaN(), 4); got != "...." {
		t.Errorf("Bar(NaN) = %q", got)
	}
	if Bar(0.5, 0) != "" {
		t.Error("zero width should be empty")
	}
}
