package weather

import (
	"math"
	"testing"
	"time"

	"mira/internal/timeutil"
	"mira/internal/units"
)

func TestDeterminism(t *testing.T) {
	a := New(7)
	b := New(7)
	ts := time.Date(2015, 4, 10, 14, 0, 0, 0, timeutil.Chicago)
	ca, cb := a.At(ts), b.At(ts)
	if ca != cb {
		t.Errorf("same seed should give identical conditions: %+v vs %+v", ca, cb)
	}
	c := New(8)
	if a.At(ts) == c.At(ts) {
		t.Error("different seeds should differ")
	}
}

func TestSeasonalCycle(t *testing.T) {
	m := New(1)
	// Average over many days to wash out noise.
	meanTemp := func(month time.Month) float64 {
		var sum float64
		n := 0
		for year := 2014; year <= 2018; year++ {
			for day := 1; day <= 28; day += 3 {
				for _, hour := range []int{3, 9, 15, 21} {
					ts := time.Date(year, month, day, hour, 0, 0, 0, timeutil.Chicago)
					sum += float64(m.At(ts).Temperature)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	jan, jul := meanTemp(time.January), meanTemp(time.July)
	if jul-jan < 30 {
		t.Errorf("July (%v) should be much warmer than January (%v)", jul, jan)
	}
	if jan < 5 || jan > 40 {
		t.Errorf("January mean = %v°F, implausible for Chicago", jan)
	}
	if jul < 60 || jul > 95 {
		t.Errorf("July mean = %v°F, implausible for Chicago", jul)
	}
}

func TestDiurnalCycle(t *testing.T) {
	m := New(2)
	// Afternoon warmer than pre-dawn, averaged over a summer month.
	var night, day float64
	n := 0
	for d := 1; d <= 28; d++ {
		ts := time.Date(2015, 7, d, 4, 0, 0, 0, timeutil.Chicago)
		night += float64(m.At(ts).Temperature)
		ts = time.Date(2015, 7, d, 15, 0, 0, 0, timeutil.Chicago)
		day += float64(m.At(ts).Temperature)
		n++
	}
	if (day-night)/float64(n) < 5 {
		t.Errorf("afternoon should average ≥5°F above pre-dawn, got %v", (day-night)/float64(n))
	}
}

func TestHumiditySeasonality(t *testing.T) {
	m := New(3)
	meanRH := func(month time.Month) float64 {
		var sum float64
		n := 0
		for year := 2014; year <= 2018; year++ {
			for day := 1; day <= 28; day += 2 {
				ts := time.Date(year, month, day, 12, 0, 0, 0, timeutil.Chicago)
				sum += float64(m.At(ts).Humidity)
				n++
			}
		}
		return sum / float64(n)
	}
	jan, jul := meanRH(time.January), meanRH(time.July)
	if jul <= jan {
		t.Errorf("summer RH (%v) should exceed winter RH (%v)", jul, jan)
	}
	if jan < 30 || jul > 100 {
		t.Errorf("implausible RH: jan=%v jul=%v", jan, jul)
	}
}

func TestHumidityInRange(t *testing.T) {
	m := New(4)
	for ts := timeutil.ProductionStart; ts.Before(timeutil.ProductionEnd); ts = ts.Add(37 * time.Hour) {
		c := m.At(ts)
		if c.Humidity < 0 || c.Humidity > 100 {
			t.Fatalf("RH out of range at %v: %v", ts, c.Humidity)
		}
		if c.Temperature < -40 || c.Temperature > 115 {
			t.Fatalf("temperature out of plausible range at %v: %v", ts, c.Temperature)
		}
	}
}

func TestWetBulbProperties(t *testing.T) {
	// Wet bulb never exceeds dry bulb and equals it near saturation.
	for _, temp := range []units.Fahrenheit{20, 40, 60, 80, 95} {
		for _, rh := range []units.RelativeHumidity{20, 50, 80, 100} {
			wb := WetBulb(temp, rh)
			if float64(wb) > float64(temp)+0.8 {
				t.Errorf("WetBulb(%v, %v) = %v exceeds dry bulb", temp, rh, wb)
			}
		}
		wb100 := WetBulb(temp, 100)
		if math.Abs(float64(wb100)-float64(temp)) > 2.5 {
			t.Errorf("WetBulb(%v, 100) = %v, want ≈ dry bulb", temp, wb100)
		}
	}
	// Known point: 68°F (20°C) at 50%RH → wet bulb ≈ 57°F (13.7°C).
	wb := WetBulb(68, 50)
	if float64(wb) < 54 || float64(wb) > 60 {
		t.Errorf("WetBulb(68, 50) = %v, want ≈57°F", wb)
	}
}

func TestFreeCoolingSeasonality(t *testing.T) {
	m := New(5)
	countAvailable := func(month time.Month) int {
		n := 0
		for year := 2014; year <= 2019; year++ {
			for day := 1; day <= 28; day += 2 {
				ts := time.Date(year, month, day, 12, 0, 0, 0, timeutil.Chicago)
				if m.FreeCoolingAvailable(ts) {
					n++
				}
			}
		}
		return n
	}
	jan := countAvailable(time.January)
	jul := countAvailable(time.July)
	if jan < 50 { // out of 84 midday samples
		t.Errorf("January free cooling available only %d/84 times", jan)
	}
	if jul != 0 {
		t.Errorf("July free cooling available %d times, want 0", jul)
	}
}

func TestValueNoiseSmoothAndBounded(t *testing.T) {
	m := New(6)
	prev := m.valueNoise(0, 1)
	for i := 1; i < 2000; i++ {
		x := float64(i) * 0.05
		v := m.valueNoise(x, 1)
		if v < -1.001 || v > 1.001 {
			t.Fatalf("noise out of bounds at %v: %v", x, v)
		}
		if math.Abs(v-prev) > 0.35 {
			t.Fatalf("noise jumped too fast at %v: %v -> %v", x, prev, v)
		}
		prev = v
	}
}

func TestValueNoiseChannelsDecorrelated(t *testing.T) {
	m := New(9)
	var dot, na, nb float64
	for i := 0; i < 3000; i++ {
		x := float64(i) * 0.7
		a := m.valueNoise(x, 0x51)
		b := m.valueNoise(x, 0x53)
		dot += a * b
		na += a * a
		nb += b * b
	}
	corr := dot / math.Sqrt(na*nb)
	if math.Abs(corr) > 0.12 {
		t.Errorf("channels correlated: %v", corr)
	}
}
