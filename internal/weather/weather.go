// Package weather models the Chicago outdoor climate that drives the Mira
// facility: the seasonal and diurnal temperature cycle, outdoor humidity,
// wet-bulb temperature, and the winter windows in which the Chilled Water
// Plant's waterside economizer can displace the chillers.
//
// The model is a pure, deterministic function of time and seed: a seasonal
// sinusoid plus diurnal cycle plus multi-octave value noise standing in for
// synoptic weather fronts. Determinism keeps six-year simulations and tests
// reproducible without storing any trace data.
package weather

import (
	"math"
	"time"

	"mira/internal/timeutil"
	"mira/internal/units"
)

// Conditions describes the outdoor environment at an instant.
type Conditions struct {
	// Temperature is the outdoor dry-bulb temperature.
	Temperature units.Fahrenheit
	// Humidity is the outdoor relative humidity.
	Humidity units.RelativeHumidity
	// WetBulb is the outdoor wet-bulb temperature, the quantity a waterside
	// economizer ultimately works against.
	WetBulb units.Fahrenheit
}

// Model is a deterministic Chicago climate generator.
type Model struct {
	seed uint64

	// MeanAnnual is the annual mean temperature (default 51°F, Chicago).
	MeanAnnual float64
	// SeasonalAmplitude is the summer/winter swing around the mean
	// (default 24°F).
	SeasonalAmplitude float64
	// DiurnalAmplitude is the day/night swing (default 8°F).
	DiurnalAmplitude float64
	// FrontAmplitude scales synoptic (multi-day) noise (default 9°F).
	FrontAmplitude float64
}

// New creates a climate model with Chicago defaults.
func New(seed int64) *Model {
	return &Model{
		seed:              uint64(seed)*0x9E3779B97F4A7C15 + 1,
		MeanAnnual:        51,
		SeasonalAmplitude: 24,
		DiurnalAmplitude:  8,
		FrontAmplitude:    9,
	}
}

// At returns the outdoor conditions at time t.
func (m *Model) At(t time.Time) Conditions {
	yf := timeutil.YearFraction(t)
	hod := timeutil.HourOfDay(t)

	// Seasonal cycle: coldest near late January (yf ≈ 0.08), hottest in
	// late July.
	seasonal := -m.SeasonalAmplitude * math.Cos(2*math.Pi*(yf-0.08))
	// Diurnal cycle: coolest shortly before sunrise (≈ 5 AM), warmest
	// mid-afternoon (≈ 3 PM).
	diurnal := m.DiurnalAmplitude * math.Sin(2*math.Pi*(hod-9)/24)
	// Synoptic fronts: two octaves of smooth value noise (≈3-day and ≈18-h
	// periods).
	hours := t.Sub(timeutil.ProductionStart).Hours()
	front := m.FrontAmplitude * (0.8*m.valueNoise(hours/72, 0x51) + 0.35*m.valueNoise(hours/18, 0x52))

	temp := m.MeanAnnual + seasonal + diurnal + front

	// Outdoor relative humidity: Chicago is more humid in summer; fronts
	// modulate it. Winter air is drier in absolute terms.
	rh := 68 + 9*math.Cos(2*math.Pi*(yf-0.55)) + 14*m.valueNoise(hours/36, 0x53) - 0.25*diurnal
	rhv := units.RelativeHumidity(rh).Clamp()

	tf := units.Fahrenheit(temp)
	return Conditions{
		Temperature: tf,
		Humidity:    rhv,
		WetBulb:     WetBulb(tf, rhv),
	}
}

// WetBulb estimates the wet-bulb temperature from dry-bulb temperature and
// relative humidity using Stull's (2011) regression, valid for the ordinary
// meteorological range.
func WetBulb(t units.Fahrenheit, rh units.RelativeHumidity) units.Fahrenheit {
	tc := float64(t.Celsius())
	r := float64(rh.Clamp())
	tw := tc*math.Atan(0.151977*math.Sqrt(r+8.313659)) +
		math.Atan(tc+r) - math.Atan(r-1.676331) +
		0.00391838*math.Pow(r, 1.5)*math.Atan(0.023101*r) -
		4.686035
	return units.Celsius(tw).Fahrenheit()
}

// EconomizerThreshold is the outdoor wet-bulb temperature below which the
// waterside economizer can carry the full plant load. Chilled-water plants
// need the wet-bulb comfortably below the chilled-water setpoint (64°F
// supply) to make free cooling; ~42°F wet-bulb covers tower approach and
// heat-exchanger approach.
const EconomizerThreshold units.Fahrenheit = 42

// FreeCoolingAvailable reports whether the outdoor conditions at t support
// full free cooling. The paper: the chillers remain partially or fully
// non-operational during the colder months (December–March).
func (m *Model) FreeCoolingAvailable(t time.Time) bool {
	return m.At(t).WetBulb <= EconomizerThreshold
}

// valueNoise returns smooth noise in [-1, 1] as a function of a continuous
// coordinate: pseudo-random values at integer lattice points, interpolated
// with a smoothstep. Different channels decorrelate temperature from
// humidity noise.
func (m *Model) valueNoise(x float64, channel uint64) float64 {
	i := math.Floor(x)
	f := x - i
	a := m.lattice(int64(i), channel)
	b := m.lattice(int64(i)+1, channel)
	// Smoothstep interpolation.
	u := f * f * (3 - 2*f)
	return a*(1-u) + b*u
}

// lattice returns a deterministic pseudo-random value in [-1, 1] for an
// integer lattice point, via splitmix64 on (seed, point, channel).
func (m *Model) lattice(i int64, channel uint64) float64 {
	z := m.seed + uint64(i)*0xBF58476D1CE4E5B9 + channel*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53)*2 - 1
}
