package campaign

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"mira/internal/timeutil"
)

// testSpec returns a small valid sweep entry.
func testSpec(name string, seed int64) JobSpec {
	return JobSpec{
		Version:      SpecVersion,
		Name:         name,
		Seed:         seed,
		Start:        "2014-03-05",
		End:          "2014-03-08",
		FailureScale: 1.5,
	}
}

func TestJobSpecRoundTrip(t *testing.T) {
	in := testSpec("heatwave-a", 42)
	in.Halls = 2
	in.WeatherSeed = 99
	in.CascadeProb = 0.8
	in.BackfillBase = 0.4
	frame, err := EncodeJobSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJobSpec(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestJobSpecValidation(t *testing.T) {
	cases := []struct {
		mutate func(*JobSpec)
		want   string
	}{
		{func(s *JobSpec) { s.Name = "" }, "name"},
		{func(s *JobSpec) { s.Name = "bad name with spaces" }, "name"},
		{func(s *JobSpec) { s.Name = strings.Repeat("x", 65) }, "name"},
		{func(s *JobSpec) { s.Halls = 10000 }, "halls"},
		{func(s *JobSpec) { s.Racks = -1 }, "racks"},
		{func(s *JobSpec) { s.Start = "not-a-date" }, "start"},
		{func(s *JobSpec) { s.End = s.Start }, "empty window"},
		{func(s *JobSpec) { s.Start = "1900-01-01"; s.End = "2100-01-01" }, "cap"},
		{func(s *JobSpec) { s.StepSeconds = -5 }, "step_seconds"},
		{func(s *JobSpec) { s.FailureScale = -1 }, "failure_scale"},
		{func(s *JobSpec) { s.CascadeProb = 1.5 }, "cascade_prob"},
		{func(s *JobSpec) { s.BackfillBase = 2 }, "backfill_base"},
		{func(s *JobSpec) { s.QueueLimit = -1 }, "queue_limit"},
		{func(s *JobSpec) { s.Version = 99 }, "version"},
	}
	for i, tc := range cases {
		s := testSpec("ok", 1)
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("case %d: invalid spec accepted: %+v", i, s)
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d: error %v does not wrap ErrBadSpec", i, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestJobSpecSimConfig(t *testing.T) {
	s := testSpec("cfg", 7)
	s.WeatherSeed = 1234
	s.CascadeProb = 0.9
	s.QueueLimit = 50
	cfg, err := s.SimConfig(2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 {
		t.Fatalf("hall 2 seed %d, want spec.Seed+2 = 9", cfg.Seed)
	}
	if cfg.WeatherSeed != 1234 {
		t.Fatalf("weather seed %d, want 1234", cfg.WeatherSeed)
	}
	if cfg.Failure.Seed != 11 || cfg.Failure.MeanEpisodesPerRack != 2.5*1.5 {
		t.Fatalf("failure config %+v: want seed 11, mean 3.75", cfg.Failure)
	}
	if cfg.Failure.CascadeExtraProb != 0.9 {
		t.Fatalf("cascade prob %v, want 0.9", cfg.Failure.CascadeExtraProb)
	}
	if cfg.Scheduler.QueueLimit != 50 {
		t.Fatalf("queue limit %d, want 50", cfg.Scheduler.QueueLimit)
	}
	want := time.Date(2014, 3, 5, 0, 0, 0, 0, timeutil.Chicago)
	if !cfg.Start.Equal(want) {
		t.Fatalf("start %v, want %v", cfg.Start, want)
	}
	// Weather default mirrors sim.Config: Seed+5 when unset.
	s.WeatherSeed = 0
	if got := s.EffectiveWeatherSeed(); got != 12 {
		t.Fatalf("default weather seed %d, want Seed+5 = 12", got)
	}
}

func TestDecodeJobSpecCorruption(t *testing.T) {
	frame, err := EncodeJobSpec(testSpec("c", 3))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     frame[:5],
		"truncated": frame[:len(frame)-3],
		"magic": append([]byte("XXXX"), frame[4:]...),
		"bitflip": func() []byte {
			b := append([]byte(nil), frame...)
			b[len(b)/2] ^= 0x40
			return b
		}(),
		"oversize-length": func() []byte {
			b := append([]byte(nil), frame...)
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := DecodeJobSpec(b); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("%s: error %v does not wrap ErrBadSpec", name, err)
		}
	}
}

func TestClaimResponseRoundTrip(t *testing.T) {
	spec := testSpec("claimed", 5)
	in := ClaimResponse{JobID: 3, Spec: &spec, Attempt: 2, LeaseMS: 30000, Pending: 4, Running: 1}
	frame, err := EncodeClaimResponse(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseClaimResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}

	// Empty claim (no job) round-trips too.
	empty := ClaimResponse{Pending: 0, Running: 2}
	frame, err = EncodeClaimResponse(empty)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := ParseClaimResponse(frame); err != nil || !reflect.DeepEqual(empty, out) {
		t.Fatalf("empty claim round trip: %+v, %v", out, err)
	}

	// Semantic violations wrap ErrBadClaim.
	for name, c := range map[string]ClaimResponse{
		"job-without-spec":  {JobID: 1, LeaseMS: 1000},
		"spec-without-job":  {Spec: &spec},
		"job-without-lease": {JobID: 1, Spec: &spec},
		"negative-depths":   {Pending: -1},
	} {
		frame, err := EncodeClaimResponse(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseClaimResponse(frame); !errors.Is(err, ErrBadClaim) {
			t.Fatalf("%s: error %v does not wrap ErrBadClaim", name, err)
		}
	}
}
