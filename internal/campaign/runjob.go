package campaign

import (
	"context"
	"fmt"
	"math"
	"time"

	"mira/internal/analysis"
	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sim"
	"mira/internal/telemetrynet"
	"mira/internal/topology"
	"mira/internal/tsdb"
)

// RunJob executes one campaign job: it stands up one simulator per hall
// (seeded spec.Seed+hall, exactly as the mirasim CLI does, so campaign and
// CLI runs of the same spec agree), streams telemetry into a worker-local
// store — or the shared telemetrynet store when spec.Push is set — and
// distills the reliability and efficiency outcomes the sweep compares.
// Hall 0 additionally feeds a live analysis collector for the figure-level
// numbers, matching the CLI's "summaries cover hall 0" convention.
func RunJob(ctx context.Context, spec JobSpec) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	if spec.Version == 0 {
		spec.Version = SpecVersion
	}
	if err := spec.Validate(); err != nil {
		return RunResult{}, err
	}
	ctx, span := obs.Span(ctx, "campaign.worker.run")
	defer span.End()
	span.SetAttr("spec", spec.Name)

	fleet := spec.Fleet()
	var sink envdb.DB
	var local *tsdb.Store
	var push *telemetrynet.Client
	if spec.Push != "" {
		push = telemetrynet.NewClient(spec.Push, telemetrynet.ClientOptions{Context: ctx})
		sink = push
	} else {
		retention := time.Duration(spec.RetentionHours) * time.Hour
		local = tsdb.NewStoreWith(tsdb.Options{Fleet: fleet, Retention: retention})
		sink = local
	}

	collector := analysis.NewCollector()
	var hall0 *sim.Simulator
	for h := 0; h < fleet.Halls; h++ {
		cfg, err := spec.SimConfig(h)
		if err != nil {
			return RunResult{}, err
		}
		rec := sim.NewEnvDBRecorder(sink)
		hs := sim.New(cfg)
		if fleet.Halls > 1 || fleet.Racks != topology.NumRacks {
			hs.AddRecorder(sim.NewHallRecorder(rec, h, fleet.Racks))
		} else {
			hs.AddRecorder(rec)
		}
		if h == 0 {
			hs.AddRecorder(collector)
		}
		if err := hs.Run(); err != nil {
			return RunResult{}, fmt.Errorf("campaign: job %s hall %d: %w", spec.Name, h, err)
		}
		if rec.Err != nil {
			return RunResult{}, fmt.Errorf("campaign: job %s hall %d telemetry: %w", spec.Name, h, rec.Err)
		}
		if h == 0 {
			hall0 = hs
		}
	}
	collector.Finalize()

	res := RunResult{
		CMFailures:    len(hall0.Log().DedupCMF()),
		Incidents:     len(hall0.Incidents()),
		NonCMFailures: len(hall0.Log().DedupNonCMF()),
	}
	stats := hall0.Scheduler().Stats()
	res.JobsCompleted = stats.Completed
	res.JobsKilled = stats.Killed

	if push != nil {
		if err := push.Flush(); err != nil {
			return RunResult{}, fmt.Errorf("campaign: job %s push: %w", spec.Name, err)
		}
		res.Records = push.Stats().PushedRecords
	} else {
		local.SealAll()
		res.Records = local.Len()
	}

	// Efficiency over the run's first calendar year, replaying the same
	// weather draw the simulators used.
	start, _, err := spec.Window()
	if err != nil {
		return RunResult{}, err
	}
	eff := collector.EfficiencyStudy(spec.EffectiveWeatherSeed(), start.Year())
	// Short windows leave whole seasons without data; those means come back
	// NaN, which neither JSON nor result comparison can carry — report 0.
	res.MeanPUE = finiteOrZero(eff.MeanPUE)
	res.WinterPUE = finiteOrZero(eff.WinterPUE)
	res.SummerPUE = finiteOrZero(eff.SummerPUE)
	res.CoolingEnergyKWh = finiteOrZero(eff.CoolingEnergyKWh)
	res.EconomizerSavingsKWh = finiteOrZero(eff.EconomizerSavingsKWh)
	res.OutletSpreadPct = finiteOrZero(collector.Fig7RackCoolant().OutletSpreadPct)
	return res, nil
}

func finiteOrZero(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}
