// Package campaign turns the twin from one six-year run into a sweep of
// what-if runs: a dispatcher owns a durable queue of simulation job specs,
// workers claim jobs under leases over HTTP, run the simulation, and report
// results back; a results store diffs outcomes across the sweep.
//
// The robustness contract, pinned by the package tests:
//
//   - a job spec file is versioned and CRC-checked, written with the same
//     tmp+fsync+rename discipline as tsdb segments — a crash between the
//     tmp write and the rename loses the in-flight transition, never a
//     committed one;
//   - claims are idempotent under blind retry: a worker re-sending the same
//     (worker, seq) claim gets the same job back, not a second one;
//   - leases expire: a job claimed by a worker that dies is requeued and
//     handed to the next claimant;
//   - dispatcher restart recovers the queue from disk with in-flight jobs
//     demoted back to pending (leases are deliberately not persisted);
//   - completing an already-completed job is a no-op duplicate, so a lost
//     completion response is safely retried and a lease-expiry double run
//     collapses to one result.
package campaign

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"regexp"
	"time"

	"mira/internal/failure"
	"mira/internal/scheduler"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// Wire/disk envelope: magic(4) | payload length (uint32 LE) | JSON payload |
// CRC32-IEEE over everything before the checksum. The same shape guards job
// specs (submit bodies, CLI spec files), queue records (one file per job),
// and claim responses.
const (
	specMagic  = "MCJ1" // job spec envelope
	claimMagic = "MCC1" // claim response envelope
	queueMagic = "MCQ1" // durable queue record envelope

	envHeaderLen = 8               // magic + length
	envTrailLen  = 4               // crc32
	maxEnvelope  = 1 << 20         // 1 MiB payload cap: reject absurd lengths before allocating
	SpecVersion  = 1               // bumped when JobSpec's JSON schema changes incompatibly
	nameMaxLen   = 64              // job names stay filesystem- and table-friendly
	maxWindow    = 20 * 365.25 * 2 // days: twice the related-work horizon, sanity cap
)

// Sentinel errors. Decoders wrap these — never panic — which the fuzz
// targets hold them to.
var (
	// ErrBadSpec rejects a malformed or invalid job spec envelope.
	ErrBadSpec = errors.New("campaign: bad job spec")
	// ErrBadClaim rejects a malformed claim response envelope.
	ErrBadClaim = errors.New("campaign: bad claim response")
	// ErrCorrupt rejects a damaged durable queue record.
	ErrCorrupt = errors.New("campaign: corrupt queue record")
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// JobSpec is one entry in a campaign sweep: everything needed to reproduce
// a simulation run. The zero value of each knob means "model default", so a
// sweep spec names only the axes it varies.
type JobSpec struct {
	// Version is the spec schema version (SpecVersion when encoded).
	Version int `json:"version"`
	// Name labels the run in status and diff tables.
	Name string `json:"name"`
	// Seed drives the whole run; equal specs produce equal results.
	Seed int64 `json:"seed"`
	// Halls and Racks size the fleet (defaults 1 hall × 48 racks).
	Halls int `json:"halls,omitempty"`
	Racks int `json:"racks,omitempty"`
	// Start and End bound the window, "YYYY-MM-DD" in the plant's zone.
	Start string `json:"start"`
	End   string `json:"end"`
	// StepSeconds is the tick length (default 300 s).
	StepSeconds int `json:"step_seconds,omitempty"`
	// RetentionHours folds partitions older than the hot window into cold
	// segments in the worker's local store (0 = keep raw).
	RetentionHours int `json:"retention_hours,omitempty"`
	// WeatherSeed picks the weather draw independently of Seed (0 = derive
	// from Seed), the "same workload, different summer" axis.
	WeatherSeed int64 `json:"weather_seed,omitempty"`
	// FailureScale multiplies the mean chiller/coolant episode rate per
	// rack (1.0 = paper-calibrated; 0 = default). The chiller-failure
	// injection axis.
	FailureScale float64 `json:"failure_scale,omitempty"`
	// CascadeProb overrides the probability that a CMF episode drags down
	// hydraulically adjacent racks (0 = default 0.55).
	CascadeProb float64 `json:"cascade_prob,omitempty"`
	// BackfillBase and QueueLimit shape the workload mix (0 = defaults).
	BackfillBase float64 `json:"backfill_base,omitempty"`
	QueueLimit   int     `json:"queue_limit,omitempty"`
	// Push streams the run's telemetry into a shared telemetrynet store at
	// this base URL instead of a worker-local throwaway store.
	Push string `json:"push,omitempty"`
}

// Validate checks the spec against model bounds. Errors wrap ErrBadSpec.
func (s JobSpec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if s.Version != SpecVersion {
		return fail("version %d, want %d", s.Version, SpecVersion)
	}
	if s.Name == "" || len(s.Name) > nameMaxLen || !nameRe.MatchString(s.Name) {
		return fail("name %q: want 1..%d chars of [A-Za-z0-9._-]", s.Name, nameMaxLen)
	}
	if s.Halls < 0 || s.Halls > topology.MaxHalls {
		return fail("halls %d out of range 0..%d", s.Halls, topology.MaxHalls)
	}
	if s.Racks < 0 || s.Racks > topology.NumRacks {
		return fail("racks %d out of range 0..%d", s.Racks, topology.NumRacks)
	}
	start, end, err := s.Window()
	if err != nil {
		return err
	}
	if days := end.Sub(start).Hours() / 24; days > maxWindow {
		return fail("window %.0f days exceeds the %.0f-day cap", days, float64(maxWindow))
	}
	if s.StepSeconds < 0 || s.StepSeconds > 24*3600 {
		return fail("step_seconds %d out of range 0..86400", s.StepSeconds)
	}
	if s.RetentionHours < 0 {
		return fail("retention_hours %d negative", s.RetentionHours)
	}
	if s.FailureScale < 0 || s.FailureScale > 100 {
		return fail("failure_scale %v out of range 0..100", s.FailureScale)
	}
	if s.CascadeProb < 0 || s.CascadeProb > 1 {
		return fail("cascade_prob %v out of range 0..1", s.CascadeProb)
	}
	if s.BackfillBase < 0 || s.BackfillBase > 1 {
		return fail("backfill_base %v out of range 0..1", s.BackfillBase)
	}
	if s.QueueLimit < 0 {
		return fail("queue_limit %d negative", s.QueueLimit)
	}
	return nil
}

// Window parses the spec's date bounds in the plant's zone.
func (s JobSpec) Window() (start, end time.Time, err error) {
	start, err = time.ParseInLocation("2006-01-02", s.Start, timeutil.Chicago)
	if err != nil {
		return start, end, fmt.Errorf("%w: start %q: not YYYY-MM-DD", ErrBadSpec, s.Start)
	}
	end, err = time.ParseInLocation("2006-01-02", s.End, timeutil.Chicago)
	if err != nil {
		return start, end, fmt.Errorf("%w: end %q: not YYYY-MM-DD", ErrBadSpec, s.End)
	}
	if !end.After(start) {
		return start, end, fmt.Errorf("%w: empty window %s..%s", ErrBadSpec, s.Start, s.End)
	}
	return start, end, nil
}

// Fleet returns the normalized fleet topology.
func (s JobSpec) Fleet() topology.Fleet {
	return topology.Fleet{Halls: s.Halls, Racks: s.Racks}.Norm()
}

// Step returns the tick length.
func (s JobSpec) Step() time.Duration {
	if s.StepSeconds <= 0 {
		return timeutil.SampleInterval
	}
	return time.Duration(s.StepSeconds) * time.Second
}

// EffectiveWeatherSeed resolves the weather draw the run will use, mirroring
// sim.Config's default so analysis of the result replays the same weather.
func (s JobSpec) EffectiveWeatherSeed() int64 {
	if s.WeatherSeed != 0 {
		return s.WeatherSeed
	}
	return s.Seed + 5
}

// SimConfig maps the spec onto one hall's simulator configuration,
// hall-offsetting the seed the same way mirasim does so a campaign run of a
// fleet matches the CLI run of the same fleet.
func (s JobSpec) SimConfig(hall int) (sim.Config, error) {
	start, end, err := s.Window()
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Seed:        s.Seed + int64(hall),
		Start:       start,
		End:         end,
		Step:        s.Step(),
		WeatherSeed: s.EffectiveWeatherSeed(),
	}
	if s.FailureScale > 0 || s.CascadeProb > 0 {
		f := failure.Config{Seed: cfg.Seed + 2}
		if s.FailureScale > 0 {
			f.MeanEpisodesPerRack = 2.5 * s.FailureScale
		}
		if s.CascadeProb > 0 {
			f.CascadeExtraProb = s.CascadeProb
		}
		cfg.Failure = f
	}
	if s.BackfillBase > 0 || s.QueueLimit > 0 {
		w := scheduler.Config{Seed: cfg.Seed + 1}
		if s.BackfillBase > 0 {
			w.BackfillBase = s.BackfillBase
		}
		if s.QueueLimit > 0 {
			w.QueueLimit = s.QueueLimit
		}
		cfg.Scheduler = w
	}
	return cfg, nil
}

// encodeEnvelope frames payload under magic with length and CRC.
func encodeEnvelope(magic string, payload []byte) []byte {
	buf := make([]byte, 0, envHeaderLen+len(payload)+envTrailLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeEnvelope verifies magic, length, and CRC, returning the payload.
// Errors wrap sentinel, with a short reason.
func decodeEnvelope(magic string, sentinel error, b []byte) ([]byte, error) {
	fail := func(reason string) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s", sentinel, reason)
	}
	if len(b) < envHeaderLen+envTrailLen {
		return fail("truncated header")
	}
	if string(b[:4]) != magic {
		return fail(fmt.Sprintf("magic %q, want %q", b[:4], magic))
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > maxEnvelope {
		return fail(fmt.Sprintf("payload length %d exceeds %d cap", n, maxEnvelope))
	}
	total := envHeaderLen + int(n) + envTrailLen
	if len(b) != total {
		return fail(fmt.Sprintf("length %d, envelope declares %d", len(b), total))
	}
	want := binary.LittleEndian.Uint32(b[total-envTrailLen:])
	if got := crc32.ChecksumIEEE(b[:total-envTrailLen]); got != want {
		return fail(fmt.Sprintf("crc %08x, want %08x", got, want))
	}
	return b[envHeaderLen : total-envTrailLen], nil
}

// EncodeJobSpec frames a validated spec for the wire or disk. The version
// field is stamped if unset.
func EncodeJobSpec(s JobSpec) ([]byte, error) {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return encodeEnvelope(specMagic, payload), nil
}

// DecodeJobSpec parses and validates a framed spec. Every failure wraps
// ErrBadSpec; malformed input never panics.
func DecodeJobSpec(b []byte) (JobSpec, error) {
	var s JobSpec
	payload, err := decodeEnvelope(specMagic, ErrBadSpec, b)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(payload, &s); err != nil {
		return JobSpec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// ClaimResponse is the dispatcher's answer to a claim: a job under lease,
// or — with JobID zero — "nothing for you", plus the queue depths a worker
// uses to decide between polling again and exiting because the sweep
// drained.
type ClaimResponse struct {
	JobID   uint64   `json:"job_id,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	LeaseMS int64    `json:"lease_ms,omitempty"`
	Pending int      `json:"pending"`
	Running int      `json:"running"`
}

// EncodeClaimResponse frames a claim response.
func EncodeClaimResponse(c ClaimResponse) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadClaim, err)
	}
	return encodeEnvelope(claimMagic, payload), nil
}

// ParseClaimResponse parses and validates a framed claim response. Every
// failure wraps ErrBadClaim; malformed input never panics.
func ParseClaimResponse(b []byte) (ClaimResponse, error) {
	var c ClaimResponse
	payload, err := decodeEnvelope(claimMagic, ErrBadClaim, b)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(payload, &c); err != nil {
		return ClaimResponse{}, fmt.Errorf("%w: %v", ErrBadClaim, err)
	}
	if c.JobID != 0 {
		if c.Spec == nil {
			return ClaimResponse{}, fmt.Errorf("%w: job %d has no spec", ErrBadClaim, c.JobID)
		}
		if err := c.Spec.Validate(); err != nil {
			return ClaimResponse{}, fmt.Errorf("%w: job %d: %v", ErrBadClaim, c.JobID, err)
		}
		if c.LeaseMS <= 0 {
			return ClaimResponse{}, fmt.Errorf("%w: job %d lease %dms", ErrBadClaim, c.JobID, c.LeaseMS)
		}
	} else if c.Spec != nil {
		return ClaimResponse{}, fmt.Errorf("%w: spec without job id", ErrBadClaim)
	}
	if c.Pending < 0 || c.Running < 0 {
		return ClaimResponse{}, fmt.Errorf("%w: negative depths %d/%d", ErrBadClaim, c.Pending, c.Running)
	}
	return c, nil
}
