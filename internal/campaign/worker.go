package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mira/internal/obs"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID identifies this worker to the dispatcher's claim dedup (default:
	// random nonzero).
	ID uint64
	// Poll is the idle wait between claims while jobs are still running
	// elsewhere (default 500 ms).
	Poll time.Duration
	// Retries bounds blind per-request retries (default 50, matching the
	// lossy-transport tests' budget).
	Retries int
	// Run executes one claimed job. Defaults to RunJob (the real
	// simulation); tests substitute stubs.
	Run func(ctx context.Context, spec JobSpec) (RunResult, error)
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Context cancels the loop (default context.Background()).
	Context context.Context
	// Logger receives progress lines; nil is silent.
	Logger *obs.Logger
}

// Worker claims jobs from a dispatcher, runs them, and reports results,
// heartbeating its lease while a run is in flight. Every RPC is blindly
// retried: claims are deduplicated server-side by (worker, seq), and
// completion is idempotent, so retries never double-consume or
// double-complete.
type Worker struct {
	base string
	opts WorkerOptions
	seq  uint64

	// Completed and Duplicates count this worker's completion outcomes,
	// readable after RunLoop returns.
	Completed  int
	Duplicates int
}

// NewWorker builds a worker against a dispatcher base URL.
func NewWorker(baseURL string, opts WorkerOptions) *Worker {
	if opts.ID == 0 {
		opts.ID = uint64(rand.Int63()) | 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Retries <= 0 {
		opts.Retries = 50
	}
	if opts.Run == nil {
		opts.Run = RunJob
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	return &Worker{base: strings.TrimRight(baseURL, "/"), opts: opts}
}

// ID returns the worker's claim identity.
func (w *Worker) ID() uint64 { return w.opts.ID }

func (w *Worker) infof(format string, args ...any) {
	if w.opts.Logger != nil {
		w.opts.Logger.Infof(format, args...)
	}
}

// post issues one POST under ctx with the active span on the wire,
// returning status and body. Transport errors surface as err.
func (w *Worker) post(ctx context.Context, path string, q url.Values, body []byte) (int, []byte, error) {
	u := w.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		req.Header.Set(obs.TraceHeader, sc.HeaderValue())
	}
	resp, err := w.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelope+envHeaderLen+envTrailLen+1))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// backoff sleeps a short, attempt-scaled, deterministic-jittered pause
// between blind retries, or returns false if ctx died.
func (w *Worker) backoff(ctx context.Context, attempt int) bool {
	d := time.Duration(attempt+1) * 5 * time.Millisecond
	if d > 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// claim asks for a job, blindly retrying under one (worker, seq) token so a
// lost response cannot leak a second job.
func (w *Worker) claim(ctx context.Context) (ClaimResponse, error) {
	w.seq++
	cctx, span := obs.Span(ctx, "campaign.worker.claim")
	defer span.End()
	q := url.Values{
		"worker": {fmt.Sprint(w.opts.ID)},
		"seq":    {fmt.Sprint(w.seq)},
	}
	var lastErr error
	for attempt := 0; attempt < w.opts.Retries; attempt++ {
		code, body, err := w.post(cctx, "/v1/campaign/claim", q, nil)
		switch {
		case err != nil || code >= 500:
			lastErr = fmt.Errorf("campaign: claim attempt %d: status %d err %v", attempt, code, err)
		case code != http.StatusOK:
			return ClaimResponse{}, fmt.Errorf("campaign: claim rejected: status %d: %s", code, body)
		default:
			resp, perr := ParseClaimResponse(body)
			if perr != nil {
				return ClaimResponse{}, perr
			}
			span.SetAttr("job", fmt.Sprint(resp.JobID))
			return resp, nil
		}
		if !w.backoff(cctx, attempt) {
			return ClaimResponse{}, cctx.Err()
		}
	}
	return ClaimResponse{}, lastErr
}

// complete reports a result, blindly retrying; a duplicate answer means an
// earlier attempt (or another worker) already committed it.
func (w *Worker) complete(ctx context.Context, jobID uint64, res RunResult) (CompleteStatus, error) {
	cctx, span := obs.Span(ctx, "campaign.worker.complete")
	defer span.End()
	span.SetAttr("job", fmt.Sprint(jobID))
	body, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	q := url.Values{
		"job":    {fmt.Sprint(jobID)},
		"worker": {fmt.Sprint(w.opts.ID)},
	}
	var lastErr error
	for attempt := 0; attempt < w.opts.Retries; attempt++ {
		code, b, err := w.post(cctx, "/v1/campaign/complete", q, body)
		switch {
		case err != nil || code >= 500:
			lastErr = fmt.Errorf("campaign: complete attempt %d: status %d err %v", attempt, code, err)
		case code != http.StatusOK:
			return "", fmt.Errorf("campaign: complete rejected: status %d: %s", code, b)
		default:
			var out struct {
				Status CompleteStatus `json:"status"`
			}
			if err := json.Unmarshal(b, &out); err != nil {
				return "", fmt.Errorf("campaign: complete response: %w", err)
			}
			return out.Status, nil
		}
		if !w.backoff(cctx, attempt) {
			return "", cctx.Err()
		}
	}
	return "", lastErr
}

// fail reports a run error so the dispatcher requeues (or parks) the job.
func (w *Worker) fail(ctx context.Context, jobID uint64, cause error) {
	q := url.Values{
		"job":    {fmt.Sprint(jobID)},
		"worker": {fmt.Sprint(w.opts.ID)},
	}
	for attempt := 0; attempt < w.opts.Retries; attempt++ {
		code, _, err := w.post(ctx, "/v1/campaign/fail", q, []byte(cause.Error()))
		if err == nil && code < 500 {
			return
		}
		if !w.backoff(ctx, attempt) {
			return
		}
	}
}

// heartbeat renews the lease every interval until stop closes; a 409 means
// the lease is gone and the result may lose the completion race.
func (w *Worker) heartbeat(ctx context.Context, jobID uint64, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			q := url.Values{
				"job":    {fmt.Sprint(jobID)},
				"worker": {fmt.Sprint(w.opts.ID)},
			}
			code, _, err := w.post(ctx, "/v1/campaign/heartbeat", q, nil)
			if err == nil && code == http.StatusConflict {
				w.infof("worker %d: lease lost on job %d", w.opts.ID, jobID)
				return
			}
		}
	}
}

// RunLoop claims and runs jobs until the dispatcher reports the sweep
// drained (no pending and no running jobs) or the context is canceled.
func (w *Worker) RunLoop() error {
	ctx := w.opts.Context
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.claim(ctx)
		if err != nil {
			return err
		}
		if resp.JobID == 0 {
			if resp.Pending == 0 && resp.Running == 0 {
				w.infof("worker %d: queue drained, exiting", w.opts.ID)
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.opts.Poll):
			}
			continue
		}

		w.infof("worker %d: claimed job %d (%s, attempt %d)",
			w.opts.ID, resp.JobID, resp.Spec.Name, resp.Attempt)
		hbStop := make(chan struct{})
		hbInterval := time.Duration(resp.LeaseMS) * time.Millisecond / 3
		if hbInterval <= 0 {
			hbInterval = time.Second
		}
		go w.heartbeat(ctx, resp.JobID, hbInterval, hbStop)

		start := time.Now()
		metWorkerRuns.Inc()
		res, runErr := w.opts.Run(ctx, *resp.Spec)
		close(hbStop)
		metWorkerRunDur.ObserveSince(start)
		if runErr != nil {
			metWorkerRunFailures.Inc()
			w.infof("worker %d: job %d failed: %v", w.opts.ID, resp.JobID, runErr)
			w.fail(ctx, resp.JobID, runErr)
			continue
		}
		res.Attempt = resp.Attempt
		res.ElapsedSeconds = time.Since(start).Seconds()
		status, err := w.complete(ctx, resp.JobID, res)
		if err != nil {
			return fmt.Errorf("campaign: worker %d job %d: %w", w.opts.ID, resp.JobID, err)
		}
		if status == DuplicateComplete {
			w.Duplicates++
		} else {
			w.Completed++
		}
		w.infof("worker %d: job %d %s (%.1fs)", w.opts.ID, resp.JobID, status, res.ElapsedSeconds)
	}
}
