package campaign

import (
	"errors"
	"fmt"
	"strings"
)

// Protocol sentinels.
var (
	// ErrLeaseLost tells a heartbeating worker its lease expired or moved.
	ErrLeaseLost = errors.New("campaign: lease lost")
	// ErrNoJob rejects an operation on an unknown job ID.
	ErrNoJob = errors.New("campaign: no such job")
)

// RunResult is what a worker reports back for one completed job: the
// reliability and efficiency outcomes the sweep exists to compare. JobID,
// Name, Seed, and Worker are stamped by the queue at completion so a stale
// worker cannot mislabel a result.
type RunResult struct {
	JobID          uint64  `json:"job_id"`
	Name           string  `json:"name"`
	Seed           int64   `json:"seed"`
	Worker         uint64  `json:"worker,omitempty"`
	Attempt        int     `json:"attempt,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`

	// Telemetry volume.
	Records int `json:"records"`

	// Reliability outcomes (paper §IV).
	CMFailures    int   `json:"cmf_failures"`
	Incidents     int   `json:"incidents"`
	NonCMFailures int   `json:"non_cmf_failures"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsKilled    int64 `json:"jobs_killed"`

	// Efficiency outcomes (paper §V).
	MeanPUE              float64 `json:"mean_pue,omitempty"`
	WinterPUE            float64 `json:"winter_pue,omitempty"`
	SummerPUE            float64 `json:"summer_pue,omitempty"`
	CoolingEnergyKWh     float64 `json:"cooling_energy_kwh,omitempty"`
	EconomizerSavingsKWh float64 `json:"economizer_savings_kwh,omitempty"`

	// Coolant distribution shape (paper Fig. 7).
	OutletSpreadPct float64 `json:"outlet_spread_pct,omitempty"`
}

// FormatDiffTable renders the sweep comparison: one row per completed job,
// ID-ordered, with reliability and efficiency deltas against the first row
// (the baseline). This is what `miraanalyze -campaign` prints.
func FormatDiffTable(results []RunResult) string {
	var b strings.Builder
	if len(results) == 0 {
		b.WriteString("campaign: no completed runs\n")
		return b.String()
	}
	base := results[0]
	fmt.Fprintf(&b, "%-4s %-20s %8s %5s %6s %7s %9s %12s %10s %8s %8s\n",
		"job", "name", "seed", "cmf", "Δcmf", "killed", "noncmf",
		"cooling_kWh", "Δ_kWh", "meanPUE", "spread%")
	for _, r := range results {
		fmt.Fprintf(&b, "%-4d %-20s %8d %5d %+6d %7d %9d %12.1f %+10.1f %8.4f %8.2f\n",
			r.JobID, r.Name, r.Seed,
			r.CMFailures, r.CMFailures-base.CMFailures,
			r.JobsKilled, r.NonCMFailures,
			r.CoolingEnergyKWh, r.CoolingEnergyKWh-base.CoolingEnergyKWh,
			r.MeanPUE, r.OutletSpreadPct)
	}
	fmt.Fprintf(&b, "baseline: job %d (%s); deltas are row minus baseline\n",
		base.JobID, base.Name)
	return b.String()
}
