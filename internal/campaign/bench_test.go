package campaign

import (
	"context"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// BenchmarkClaimCycle times one full worker protocol round trip over real
// HTTP: claim → heartbeat → complete, including the durable completion
// write. This is the dispatcher's per-job overhead — the floor under how
// fast a sweep of trivial jobs can drain. Recorded into BENCH_net.json by
// make bench.
func BenchmarkClaimCycle(b *testing.B) {
	dir := b.TempDir()
	q, err := OpenQueue(dir, QueueOptions{Lease: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(NewDispatcher(q, nil).Handler())
	defer ts.Close()

	spec := testSpecB(b)
	for i := 0; i < b.N; i++ {
		if _, err := q.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	w := NewWorker(ts.URL, WorkerOptions{ID: 1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := w.claim(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if resp.JobID == 0 {
			b.Fatal("queue drained early")
		}
		hb := url.Values{"job": {fmt.Sprint(resp.JobID)}, "worker": {"1"}}
		if code, _, err := w.post(ctx, "/v1/campaign/heartbeat", hb, nil); err != nil || code != 200 {
			b.Fatalf("heartbeat: status %d err %v", code, err)
		}
		if _, err := w.complete(ctx, resp.JobID, RunResult{Records: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// testSpecB mirrors the test helper without *testing.T.
func testSpecB(b *testing.B) JobSpec {
	b.Helper()
	return JobSpec{
		Version: SpecVersion, Name: "bench", Seed: 1,
		Start: "2014-03-05", End: "2014-03-08",
	}
}
