package campaign

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for lease tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func openTestQueue(t *testing.T, dir string, clock *fakeClock) *Queue {
	t.Helper()
	q, err := OpenQueue(dir, QueueOptions{Lease: 10 * time.Second, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueueLifecycle(t *testing.T) {
	clock := newFakeClock()
	q := openTestQueue(t, t.TempDir(), clock)

	id, err := q.Submit(testSpec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first job id %d, want 1", id)
	}
	if _, err := q.Submit(JobSpec{Name: "bad"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("invalid submit error %v, want ErrBadSpec", err)
	}

	resp, err := q.Claim(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID != 1 || resp.Spec == nil || resp.Spec.Name != "a" || resp.Attempt != 1 {
		t.Fatalf("claim %+v, want job 1 spec a attempt 1", resp)
	}

	if err := q.Heartbeat(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := q.Heartbeat(1, 8); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign heartbeat error %v, want ErrLeaseLost", err)
	}

	st, err := q.Complete(1, 7, RunResult{CMFailures: 3})
	if err != nil || st != Completed {
		t.Fatalf("complete: %v %v, want Completed", st, err)
	}
	// Double completion is a no-op duplicate — even from another worker.
	dupsBefore := metCompleteDups.Value()
	st, err = q.Complete(1, 9, RunResult{CMFailures: 99})
	if err != nil || st != DuplicateComplete {
		t.Fatalf("double complete: %v %v, want DuplicateComplete", st, err)
	}
	if metCompleteDups.Value() != dupsBefore+1 {
		t.Fatal("mira_campaign_complete_duplicates_total did not advance")
	}
	results := q.Results()
	if len(results) != 1 || results[0].CMFailures != 3 || results[0].JobID != 1 ||
		results[0].Name != "a" || results[0].Worker != 7 {
		t.Fatalf("results %+v: duplicate overwrote the first result or stamping failed", results)
	}
	if _, err := q.Complete(99, 7, RunResult{}); !errors.Is(err, ErrNoJob) {
		t.Fatalf("unknown job error %v, want ErrNoJob", err)
	}
}

func TestQueueClaimIdempotentUnderRetry(t *testing.T) {
	clock := newFakeClock()
	q := openTestQueue(t, t.TempDir(), clock)
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(testSpec("job", int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	first, err := q.Claim(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The response was "lost"; the worker blindly retries the same seq and
	// must get the same job, not consume a second one.
	dupsBefore := metClaimDups.Value()
	retry, err := q.Claim(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if retry.JobID != first.JobID {
		t.Fatalf("retried claim got job %d, want the same job %d", retry.JobID, first.JobID)
	}
	if metClaimDups.Value() != dupsBefore+1 {
		t.Fatal("mira_campaign_claim_duplicates_total did not advance")
	}
	// A fresh seq gets the next job.
	second, err := q.Claim(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if second.JobID == first.JobID {
		t.Fatalf("fresh seq re-issued job %d", first.JobID)
	}
	// Stale seq is rejected.
	if _, err := q.Claim(5, 1); err == nil {
		t.Fatal("stale claim seq accepted")
	}
	// Zero identities are rejected.
	if _, err := q.Claim(0, 1); err == nil {
		t.Fatal("zero worker accepted")
	}
}

func TestQueueLeaseExpiryRequeues(t *testing.T) {
	clock := newFakeClock()
	q := openTestQueue(t, t.TempDir(), clock)
	if _, err := q.Submit(testSpec("orphan", 1)); err != nil {
		t.Fatal(err)
	}

	resp, err := q.Claim(1, 1)
	if err != nil || resp.JobID != 1 {
		t.Fatalf("claim: %+v %v", resp, err)
	}
	// Another worker sees nothing while the lease is live.
	if r, err := q.Claim(2, 1); err != nil || r.JobID != 0 {
		t.Fatalf("second claim under live lease: %+v %v, want empty", r, err)
	}
	if r, _ := q.Claim(2, 1); r.Running != 1 {
		t.Fatalf("empty claim reports running=%d, want 1", r.Running)
	}

	// Worker 1 dies; the lease lapses; worker 2 inherits the job.
	expBefore := metLeaseExpired.Value()
	clock.Advance(11 * time.Second)
	r, err := q.Claim(2, 2)
	if err != nil || r.JobID != 1 {
		t.Fatalf("claim after expiry: %+v %v, want job 1", r, err)
	}
	if r.Attempt != 2 {
		t.Fatalf("inherited claim attempt %d, want 2", r.Attempt)
	}
	if metLeaseExpired.Value() != expBefore+1 {
		t.Fatal("mira_campaign_leases_expired_total did not advance")
	}
	// The dead worker's heartbeat is rejected.
	if err := q.Heartbeat(1, 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead worker heartbeat error %v, want ErrLeaseLost", err)
	}
	// Heartbeats keep worker 2's lease alive across expiry horizons.
	for i := 0; i < 3; i++ {
		clock.Advance(8 * time.Second)
		if err := q.Heartbeat(1, 2); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if st, err := q.Complete(1, 2, RunResult{}); err != nil || st != Completed {
		t.Fatalf("complete after heartbeats: %v %v", st, err)
	}
}

func TestQueueRestartDemotesInFlight(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	q := openTestQueue(t, dir, clock)
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(testSpec("r", int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Job 1 completes; job 2 is mid-flight when the dispatcher "crashes".
	if r, err := q.Claim(1, 1); err != nil || r.JobID != 1 {
		t.Fatalf("claim: %+v %v", r, err)
	}
	if _, err := q.Complete(1, 1, RunResult{Records: 10}); err != nil {
		t.Fatal(err)
	}
	if r, err := q.Claim(1, 2); err != nil || r.JobID != 2 {
		t.Fatalf("claim 2: %+v %v", r, err)
	}

	// Reopen the same directory: the done job survives with its result, the
	// in-flight job demotes to pending, nothing is lost or duplicated.
	q2 := openTestQueue(t, dir, clock)
	st := q2.Status()
	if len(st) != 3 {
		t.Fatalf("reopened queue has %d jobs, want 3", len(st))
	}
	if st[0].State != StateDone || st[1].State != StatePending || st[2].State != StatePending {
		t.Fatalf("reopened states %v/%v/%v, want done/pending/pending", st[0].State, st[1].State, st[2].State)
	}
	if res := q2.Results(); len(res) != 1 || res[0].Records != 10 {
		t.Fatalf("reopened results %+v, want the one stored result", res)
	}
	// The demoted job is immediately claimable again.
	if r, err := q2.Claim(9, 1); err != nil || r.JobID != 2 {
		t.Fatalf("claim after restart: %+v %v, want demoted job 2", r, err)
	}
	// Submissions continue with fresh IDs.
	id, err := q2.Submit(testSpec("r", 4))
	if err != nil || id != 4 {
		t.Fatalf("submit after reopen: id %d err %v, want 4", id, err)
	}
}

func TestQueueFailParksAfterMaxAttempts(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{Lease: 10 * time.Second, MaxAttempts: 2, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(testSpec("doomed", 1)); err != nil {
		t.Fatal(err)
	}
	// First failure requeues.
	if r, err := q.Claim(1, 1); err != nil || r.JobID != 1 {
		t.Fatalf("claim: %+v %v", r, err)
	}
	if err := q.Fail(1, 1, "boom"); err != nil {
		t.Fatal(err)
	}
	if st := q.Status(); st[0].State != StatePending {
		t.Fatalf("state after first failure %v, want pending", st[0].State)
	}
	// Second failure parks it durably.
	if r, err := q.Claim(1, 2); err != nil || r.JobID != 1 {
		t.Fatalf("reclaim: %+v %v", r, err)
	}
	if err := q.Fail(1, 1, "boom again"); err != nil {
		t.Fatal(err)
	}
	if st := q.Status(); st[0].State != StateFailed || st[0].Error != "boom again" {
		t.Fatalf("state after second failure %+v, want failed with cause", st[0])
	}
	// The parked state survives restart.
	q2 := openTestQueue(t, dir, clock)
	if st := q2.Status(); st[0].State != StateFailed {
		t.Fatalf("reopened state %v, want failed", st[0].State)
	}
	// And a parked job is not claimable.
	if r, err := q2.Claim(2, 1); err != nil || r.JobID != 0 {
		t.Fatalf("claim of parked job: %+v %v, want empty", r, err)
	}
}
