package campaign

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestLeaseExpiryProperty drives N simulated workers over M jobs through
// thousands of randomized schedules: workers claim, heartbeat, die without
// a word, or finish; the clock jumps by random amounts that straddle the
// lease horizon; dead workers are replaced by fresh identities. Whatever
// the interleaving, the invariant the dispatcher sells is: every job
// completes, and every job completes exactly once (extra finishes collapse
// to duplicates). Runs under -race via make check.
func TestLeaseExpiryProperty(t *testing.T) {
	const (
		seeds   = 40
		workers = 4
		jobs    = 7
		lease   = 10 * time.Second
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clock := newFakeClock()
			q, err := OpenQueue(t.TempDir(), QueueOptions{Lease: lease, Now: clock.Now})
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < jobs; j++ {
				if _, err := q.Submit(testSpec(fmt.Sprintf("p%d", j), int64(j+1))); err != nil {
					t.Fatal(err)
				}
			}

			type workerState struct {
				id    uint64
				seq   uint64
				jobID uint64 // 0 = idle
			}
			ws := make([]*workerState, workers)
			nextWorker := uint64(1)
			for i := range ws {
				ws[i] = &workerState{id: nextWorker}
				nextWorker++
			}

			completedOnce := 0
			duplicates := 0
			for step := 0; step < 5000 && completedOnce < jobs; step++ {
				w := ws[rng.Intn(workers)]
				switch {
				case w.jobID == 0: // idle: claim (sometimes retrying a "lost" response)
					w.seq++
					resp, err := q.Claim(w.id, w.seq)
					if err != nil {
						t.Fatalf("step %d: claim: %v", step, err)
					}
					if rng.Intn(4) == 0 { // response lost: blind retry, same seq
						retry, err := q.Claim(w.id, w.seq)
						if err != nil {
							t.Fatalf("step %d: retried claim: %v", step, err)
						}
						if resp.JobID != 0 && retry.JobID != resp.JobID {
							t.Fatalf("step %d: retry leaked job %d over %d", step, retry.JobID, resp.JobID)
						}
						resp = retry
					}
					w.jobID = resp.JobID
				case rng.Intn(3) == 0: // die silently: a new worker replaces it
					*w = workerState{id: nextWorker}
					nextWorker++
				case rng.Intn(2) == 0: // heartbeat; a lost lease abandons the run
					if err := q.Heartbeat(w.jobID, w.id); err != nil {
						w.jobID = 0
					}
				default: // finish and report
					st, err := q.Complete(w.jobID, w.id, RunResult{Records: 1})
					if err != nil {
						t.Fatalf("step %d: complete: %v", step, err)
					}
					if st == DuplicateComplete {
						duplicates++
					} else {
						completedOnce++
					}
					w.jobID = 0
				}
				// Clock jumps straddle the lease horizon so expiry actually
				// fires mid-schedule.
				clock.Advance(time.Duration(rng.Int63n(int64(lease))) * 3 / 2)
			}

			if completedOnce != jobs {
				t.Fatalf("%d first-time completions, want %d (duplicates %d)", completedOnce, jobs, duplicates)
			}
			if res := q.Results(); len(res) != jobs {
				t.Fatalf("results store holds %d, want %d", len(res), jobs)
			}
			if p, r := q.Depths(); p != 0 || r != 0 {
				t.Fatalf("drained queue reports pending=%d running=%d", p, r)
			}
		})
	}
}

// TestLeaseConcurrentHammer is the -race companion: real goroutine workers
// with real (short) leases race over one queue with no fake clock. Every
// job must end completed with exactly one stored result.
func TestLeaseConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		jobs    = 24
	)
	q, err := OpenQueue(t.TempDir(), QueueOptions{Lease: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		if _, err := q.Submit(testSpec(fmt.Sprintf("h%d", j), int64(j+1))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for wid := uint64(1); wid <= workers; wid++ {
		wg.Add(1)
		go func(wid uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wid)))
			var seq uint64
			for {
				seq++
				resp, err := q.Claim(wid, seq)
				if err != nil {
					continue
				}
				if resp.JobID == 0 {
					if resp.Pending == 0 && resp.Running == 0 {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				// Some runs outlive the lease on purpose; the slow finisher
				// must land as a duplicate, not a second result.
				if rng.Intn(3) == 0 {
					time.Sleep(30 * time.Millisecond)
				}
				if _, err := q.Complete(resp.JobID, wid, RunResult{Records: int(resp.JobID)}); err != nil {
					t.Errorf("worker %d: complete %d: %v", wid, resp.JobID, err)
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	res := q.Results()
	if len(res) != jobs {
		t.Fatalf("results store holds %d, want %d", len(res), jobs)
	}
	seen := map[uint64]bool{}
	for _, r := range res {
		if seen[r.JobID] {
			t.Fatalf("job %d has two results", r.JobID)
		}
		seen[r.JobID] = true
		if r.Records != int(r.JobID) {
			t.Fatalf("job %d result %d: a late duplicate overwrote the committed result", r.JobID, r.Records)
		}
	}
}
