package campaign

import "mira/internal/obs"

// Campaign metrics. The dispatcher counters trace the queue state machine
// (submit → claim → complete, with the dedup/duplicate/expiry edges the
// exactly-once contract depends on); the worker series time the runs
// themselves.
var (
	metSubmitted = obs.NewCounter("mira_campaign_jobs_submitted_total",
		"jobs accepted into the durable campaign queue")
	metCompleted = obs.NewCounter("mira_campaign_jobs_completed_total",
		"jobs completed with a stored result")
	metFailed = obs.NewCounter("mira_campaign_jobs_failed_total",
		"jobs that exhausted their attempts and were parked as failed")
	metClaims = obs.NewCounter("mira_campaign_claims_total",
		"fresh claims handed out (leases granted)")
	metClaimDups = obs.NewCounter("mira_campaign_claim_duplicates_total",
		"retried claims answered from the per-worker dedup state instead of a new lease")
	metCompleteDups = obs.NewCounter("mira_campaign_complete_duplicates_total",
		"completions of already-done jobs treated as no-ops")
	metHeartbeats = obs.NewCounter("mira_campaign_heartbeats_total",
		"lease renewals accepted")
	metLeaseExpired = obs.NewCounter("mira_campaign_leases_expired_total",
		"leases that expired and requeued their job")
	metRequeues = obs.NewCounter("mira_campaign_requeues_total",
		"jobs returned to pending by worker-reported failure")
	metPending = obs.NewGauge("mira_campaign_jobs_pending",
		"jobs waiting for a worker")
	metRunning = obs.NewGauge("mira_campaign_jobs_running",
		"jobs under an unexpired lease")

	metWorkerRuns = obs.NewCounter("mira_campaign_worker_runs_total",
		"simulation runs started by this worker process")
	metWorkerRunFailures = obs.NewCounter("mira_campaign_worker_run_failures_total",
		"simulation runs that returned an error")
	metWorkerRunDur = obs.NewHistogram("mira_campaign_worker_run_seconds",
		"wall-clock duration of one claimed simulation run", nil)
)
