package campaign

import (
	"errors"
	"testing"
)

// fuzzSeeds frames one valid envelope and derives the canonical corruption
// shapes: truncation, a flipped payload bit, a flipped CRC bit, and an
// absurd declared length.
func fuzzSeeds(f *testing.F, frame []byte) {
	f.Add(frame)
	f.Add([]byte{})
	f.Add(frame[:4])
	f.Add(frame[:len(frame)-2])
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	crcFlip := append([]byte(nil), frame...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip)
	oversize := append([]byte(nil), frame...)
	oversize[4], oversize[5], oversize[6], oversize[7] = 0xff, 0xff, 0xff, 0xff
	f.Add(oversize)
}

// FuzzDecodeJobSpec holds the spec decoder to "wrapped sentinel error,
// never a panic": whatever bytes arrive, either a valid spec comes back
// (and re-validates and re-encodes cleanly) or the error wraps ErrBadSpec.
func FuzzDecodeJobSpec(f *testing.F) {
	frame, err := EncodeJobSpec(JobSpec{
		Version: SpecVersion, Name: "fuzz-seed", Seed: 42,
		Start: "2014-03-05", End: "2014-03-08", FailureScale: 1.5,
	})
	if err != nil {
		f.Fatal(err)
	}
	fuzzSeeds(f, frame)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadSpec", err)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("decoded spec fails validation: %v", err)
		}
		if _, err := EncodeJobSpec(spec); err != nil {
			t.Fatalf("decoded spec does not re-encode: %v", err)
		}
	})
}

// FuzzParseClaimResponse is the same contract for the claim decoder: a
// valid claim or an ErrBadClaim-wrapped error, never a panic.
func FuzzParseClaimResponse(f *testing.F) {
	spec := JobSpec{
		Version: SpecVersion, Name: "fuzz-claim", Seed: 7,
		Start: "2014-03-05", End: "2014-03-08",
	}
	frame, err := EncodeClaimResponse(ClaimResponse{
		JobID: 3, Spec: &spec, Attempt: 1, LeaseMS: 30000, Pending: 2, Running: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	fuzzSeeds(f, frame)
	empty, err := EncodeClaimResponse(ClaimResponse{Pending: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseClaimResponse(data)
		if err != nil {
			if !errors.Is(err, ErrBadClaim) {
				t.Fatalf("error %v does not wrap ErrBadClaim", err)
			}
			return
		}
		if c.JobID != 0 {
			if c.Spec == nil || c.LeaseMS <= 0 {
				t.Fatalf("invalid claim passed validation: %+v", c)
			}
		}
	})
}
