package campaign

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Job states. Only pending, done, and failed are ever persisted: "running"
// is an in-memory lease, so a dispatcher crash demotes every in-flight job
// back to pending simply by reopening the directory — recovery is the
// absence of lease state, not a repair pass.
const (
	StatePending = "pending"
	StateRunning = "running" // in-memory only: pending + unexpired lease
	StateDone    = "done"
	StateFailed  = "failed"
)

// jobRecord is the durable form of one queue entry, framed under queueMagic
// with the envelope CRC, one file per job.
type jobRecord struct {
	ID     uint64     `json:"id"`
	State  string     `json:"state"`
	Spec   JobSpec    `json:"spec"`
	Result *RunResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// lease tracks one in-memory claim.
type lease struct {
	worker  uint64
	attempt int
	expiry  time.Time
}

// claimVerdict is the commit-gated dedup state for one worker: the answer
// given to its highest claim sequence, replayed verbatim when the worker
// blind-retries the same sequence after a lost response. Same pattern as
// telemetrynet's (clientID, seq) ingest tokens.
type claimVerdict struct {
	seq   uint64
	jobID uint64 // 0 = "no job was available"
	el    *list.Element
}

// QueueOptions configures OpenQueue.
type QueueOptions struct {
	// Lease is how long a claim stays valid without a heartbeat
	// (default 30 s).
	Lease time.Duration
	// MaxAttempts parks a job as failed after this many worker-reported
	// failures (default 3). Lease expiries do not count — a slow worker is
	// not a broken job.
	MaxAttempts int
	// MaxWorkers bounds the claim-dedup table, LRU-evicted (default 1024).
	MaxWorkers int
	// Now overrides the clock for tests (default time.Now).
	Now func() time.Time
}

func (o QueueOptions) withDefaults() QueueOptions {
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Queue is the durable campaign job queue. Every committed state transition
// is a whole-file rewrite through tmp+fsync+rename — the same discipline as
// tsdb segments — ordered disk-first: memory only changes after the rename
// lands, so a crash at any point leaves either the old committed state or
// the new one, never a half-transition.
type Queue struct {
	dir  string
	opts QueueOptions

	mu       sync.Mutex
	jobs     map[uint64]*jobRecord
	leases   map[uint64]*lease
	nextID   uint64
	attempts map[uint64]int // worker-reported failures per job (in-memory)
	claims   map[uint64]int // times each job has been handed out (in-memory)

	workers map[uint64]*claimVerdict
	lru     *list.List // claimVerdict owners, front = most recent
}

// Failpoints for crash tests, nil in production: called between the tmp
// write (synced) and the rename, and after the rename but before the
// in-memory commit. Returning an error aborts the transition at that point,
// simulating a dispatcher killed mid-write.
var (
	queueFailAfterTmpWrite func(path string) error
	queueFailAfterRename   func(path string) error
)

// OpenQueue opens or creates a queue directory, recovering committed jobs.
// Stray .tmp files from a crashed write are ignored and cleared; a damaged
// job file fails the open with ErrCorrupt rather than silently dropping a
// job.
func OpenQueue(dir string, opts QueueOptions) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open queue: %w", err)
	}
	q := &Queue{
		dir:      dir,
		opts:     opts.withDefaults(),
		jobs:     make(map[uint64]*jobRecord),
		leases:   make(map[uint64]*lease),
		attempts: make(map[uint64]int),
		claims:   make(map[uint64]int),
		workers:  make(map[uint64]*claimVerdict),
		lru:      list.New(),
		nextID:   1,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: open queue: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash between tmp write and rename: the transition never
			// committed, so the leftover is garbage by construction.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".cjob") {
			continue
		}
		rec, err := readJobFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if _, dup := q.jobs[rec.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate job id %d", ErrCorrupt, rec.ID)
		}
		q.jobs[rec.ID] = rec
		if rec.ID >= q.nextID {
			q.nextID = rec.ID + 1
		}
	}
	q.setGauges()
	return q, nil
}

// jobPath names a job's durable file.
func (q *Queue) jobPath(id uint64) string {
	return filepath.Join(q.dir, fmt.Sprintf("job-%08d.cjob", id))
}

func readJobFile(path string) (*jobRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read %s: %w", filepath.Base(path), err)
	}
	payload, err := decodeEnvelope(queueMagic, ErrCorrupt, b)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, filepath.Base(path))
	}
	var rec jobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	switch rec.State {
	case StatePending, StateDone, StateFailed:
	default:
		return nil, fmt.Errorf("%w: %s: state %q", ErrCorrupt, filepath.Base(path), rec.State)
	}
	return &rec, nil
}

// writeJobFile commits rec to disk atomically: marshal, frame, write to a
// .tmp sibling, fsync, rename over the final name. The caller mutates
// memory only after this returns nil.
func (q *Queue) writeJobFile(rec *jobRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: encode job %d: %w", rec.ID, err)
	}
	framed := encodeEnvelope(queueMagic, payload)
	path := q.jobPath(rec.ID)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: write job %d: %w", rec.ID, err)
	}
	defer os.Remove(tmp)
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return fmt.Errorf("campaign: write job %d: %w", rec.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("campaign: sync job %d: %w", rec.ID, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("campaign: close job %d: %w", rec.ID, err)
	}
	if fp := queueFailAfterTmpWrite; fp != nil {
		if err := fp(path); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: commit job %d: %w", rec.ID, err)
	}
	if fp := queueFailAfterRename; fp != nil {
		if err := fp(path); err != nil {
			return err
		}
	}
	return nil
}

// Submit validates and durably appends a job, returning its ID.
func (q *Queue) Submit(spec JobSpec) (uint64, error) {
	if spec.Version == 0 {
		spec.Version = SpecVersion
	}
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	rec := &jobRecord{ID: q.nextID, State: StatePending, Spec: spec}
	if err := q.writeJobFile(rec); err != nil {
		return 0, err
	}
	q.nextID++
	q.jobs[rec.ID] = rec
	metSubmitted.Inc()
	q.setGauges()
	return rec.ID, nil
}

// expireLocked requeues every job whose lease has lapsed. Nothing touches
// disk: a lease was never persisted, so expiry is purely forgetting it.
func (q *Queue) expireLocked(now time.Time) {
	for id, l := range q.leases {
		if now.After(l.expiry) {
			delete(q.leases, id)
			metLeaseExpired.Inc()
		}
	}
}

// touchWorkerLocked moves or inserts the worker's dedup entry at the LRU
// front, evicting the coldest entry past the cap.
func (q *Queue) touchWorkerLocked(worker uint64) *claimVerdict {
	v := q.workers[worker]
	if v == nil {
		v = &claimVerdict{}
		v.el = q.lru.PushFront(worker)
		q.workers[worker] = v
		for q.lru.Len() > q.opts.MaxWorkers {
			old := q.lru.Back()
			delete(q.workers, old.Value.(uint64))
			q.lru.Remove(old)
		}
	} else {
		q.lru.MoveToFront(v.el)
	}
	return v
}

// Claim hands the lowest-ID pending job to the worker under a fresh lease.
// It is idempotent under blind retry: a (worker, seq) pair already answered
// returns the same verdict — the same job with a renewed lease, or the same
// "nothing available" — instead of consuming a second job. A response with
// JobID zero carries the queue depths so the worker can tell "try later"
// from "sweep drained".
func (q *Queue) Claim(worker, seq uint64) (ClaimResponse, error) {
	if worker == 0 || seq == 0 {
		return ClaimResponse{}, fmt.Errorf("campaign: claim: worker and seq must be nonzero")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	q.expireLocked(now)
	defer q.setGauges()

	v := q.touchWorkerLocked(worker)
	if seq < v.seq {
		return ClaimResponse{}, fmt.Errorf("campaign: claim: stale seq %d < %d for worker %d", seq, v.seq, worker)
	}
	if seq == v.seq && v.jobID != 0 {
		// Retried claim: if the job is still this worker's, replay the
		// verdict with a renewed lease. If the lease meanwhile expired and
		// moved on, fall through and claim fresh — completion dedup keeps
		// the sweep exactly-once even if both runs finish.
		if l, ok := q.leases[v.jobID]; ok && l.worker == worker {
			l.expiry = now.Add(q.opts.Lease)
			metClaimDups.Inc()
			return q.claimResponseLocked(v.jobID, l), nil
		}
	}

	// Fresh claim: lowest pending job without a live lease.
	var pick *jobRecord
	for _, rec := range q.jobs {
		if rec.State != StatePending {
			continue
		}
		if _, leased := q.leases[rec.ID]; leased {
			continue
		}
		if pick == nil || rec.ID < pick.ID {
			pick = rec
		}
	}
	v.seq = seq
	if pick == nil {
		v.jobID = 0
		p, r := q.depthsLocked()
		return ClaimResponse{Pending: p, Running: r}, nil
	}
	q.claims[pick.ID]++
	l := &lease{worker: worker, attempt: q.claims[pick.ID], expiry: now.Add(q.opts.Lease)}
	q.leases[pick.ID] = l
	v.jobID = pick.ID
	metClaims.Inc()
	return q.claimResponseLocked(pick.ID, l), nil
}

func (q *Queue) claimResponseLocked(id uint64, l *lease) ClaimResponse {
	spec := q.jobs[id].Spec
	p, r := q.depthsLocked()
	return ClaimResponse{
		JobID:   id,
		Spec:    &spec,
		Attempt: l.attempt,
		LeaseMS: q.opts.Lease.Milliseconds(),
		Pending: p,
		Running: r,
	}
}

// Heartbeat renews the worker's lease. A lapsed or stolen lease returns
// ErrLeaseLost so the worker abandons the run.
func (q *Queue) Heartbeat(jobID, worker uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	q.expireLocked(now)
	defer q.setGauges()
	l, ok := q.leases[jobID]
	if !ok || l.worker != worker {
		return fmt.Errorf("%w: job %d worker %d", ErrLeaseLost, jobID, worker)
	}
	l.expiry = now.Add(q.opts.Lease)
	metHeartbeats.Inc()
	return nil
}

// CompleteStatus reports what a completion did.
type CompleteStatus string

const (
	// Completed: the result was durably stored, first finisher.
	Completed CompleteStatus = "completed"
	// DuplicateComplete: the job was already done; the result is discarded
	// and the call is a no-op — the exactly-once edge.
	DuplicateComplete CompleteStatus = "duplicate"
)

// Complete durably stores the job's result and marks it done, disk-first.
// Completing an already-done job — a retried request whose first response
// was lost, or the loser of a lease-expiry double run — is a no-op
// duplicate. The completing worker need not hold the lease: a worker that
// finished after losing its lease still carries a valid result, and the
// done-state check is what makes the race exactly-once.
func (q *Queue) Complete(jobID, worker uint64, res RunResult) (CompleteStatus, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.opts.Now())
	defer q.setGauges()
	rec, ok := q.jobs[jobID]
	if !ok {
		return "", fmt.Errorf("%w: job %d", ErrNoJob, jobID)
	}
	if rec.State == StateDone {
		metCompleteDups.Inc()
		return DuplicateComplete, nil
	}
	res.JobID = jobID
	res.Name = rec.Spec.Name
	res.Seed = rec.Spec.Seed
	res.Worker = worker
	next := *rec
	next.State = StateDone
	next.Result = &res
	next.Error = ""
	if err := q.writeJobFile(&next); err != nil {
		return "", err
	}
	*rec = next
	delete(q.leases, jobID)
	metCompleted.Inc()
	return Completed, nil
}

// Fail records a worker-reported run failure: the lease is released and the
// job requeues, until MaxAttempts failures park it as failed on disk.
func (q *Queue) Fail(jobID, worker uint64, cause string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.opts.Now())
	defer q.setGauges()
	rec, ok := q.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: job %d", ErrNoJob, jobID)
	}
	if rec.State != StatePending {
		return nil // already done or parked; nothing to requeue
	}
	if l, ok := q.leases[jobID]; ok && l.worker == worker {
		delete(q.leases, jobID)
	}
	q.attempts[jobID]++
	if q.attempts[jobID] >= q.opts.MaxAttempts {
		next := *rec
		next.State = StateFailed
		next.Error = cause
		if err := q.writeJobFile(&next); err != nil {
			return err
		}
		*rec = next
		metFailed.Inc()
		return nil
	}
	metRequeues.Inc()
	return nil
}

// depthsLocked counts pending (claimable) and running (leased) jobs.
func (q *Queue) depthsLocked() (pending, running int) {
	for _, rec := range q.jobs {
		if rec.State != StatePending {
			continue
		}
		if _, leased := q.leases[rec.ID]; leased {
			running++
		} else {
			pending++
		}
	}
	return pending, running
}

func (q *Queue) setGauges() {
	p, r := q.depthsLocked()
	metPending.Set(float64(p))
	metRunning.Set(float64(r))
}

// JobStatus is one row of the queue's externally visible state.
type JobStatus struct {
	ID      uint64 `json:"id"`
	Name    string `json:"name"`
	State   string `json:"state"` // pending | running | done | failed
	Worker  uint64 `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Status snapshots every job, ID-ordered, with leases surfaced as
// "running".
func (q *Queue) Status() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.opts.Now())
	out := make([]JobStatus, 0, len(q.jobs))
	for _, rec := range q.jobs {
		st := JobStatus{ID: rec.ID, Name: rec.Spec.Name, State: rec.State, Error: rec.Error}
		if l, ok := q.leases[rec.ID]; ok && rec.State == StatePending {
			st.State = StateRunning
			st.Worker = l.worker
			st.Attempt = l.attempt
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Results returns the stored RunResults of completed jobs, ID-ordered.
func (q *Queue) Results() []RunResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []RunResult
	for _, rec := range q.jobs {
		if rec.State == StateDone && rec.Result != nil {
			out = append(out, *rec.Result)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].JobID < out[b].JobID })
	return out
}

// Depths reports (pending, running) for drain detection.
func (q *Queue) Depths() (pending, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.opts.Now())
	return q.depthsLocked()
}
