package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errCrash simulates the process dying mid-write.
var errCrash = errors.New("injected crash")

// TestQueueCrashBetweenTmpWriteAndRename pins the atomic-commit discipline:
// a dispatcher killed after the tmp file is written and synced but before
// the rename lands must, on reopen, see exactly the committed state — the
// interrupted transition vanishes, nothing is lost, nothing duplicated.
// Mirrors the tsdb compaction crash tests.
func TestQueueCrashBetweenTmpWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	q := openTestQueue(t, dir, clock)
	if _, err := q.Submit(testSpec("committed", 1)); err != nil {
		t.Fatal(err)
	}

	// Crash during the second submit: the tmp write completes, the rename
	// never happens.
	queueFailAfterTmpWrite = func(path string) error { return errCrash }
	if _, err := q.Submit(testSpec("lost", 2)); !errors.Is(err, errCrash) {
		queueFailAfterTmpWrite = nil
		t.Fatalf("submit under failpoint: %v, want injected crash", err)
	}
	queueFailAfterTmpWrite = nil

	// The aborted write must not have committed in memory either.
	if st := q.Status(); len(st) != 1 {
		t.Fatalf("queue holds %d jobs after aborted submit, want 1", len(st))
	}

	// Plant the tmp leftover a real SIGKILL would leave (the failpoint path
	// cleans up via defer; a killed process would not).
	stray := filepath.Join(dir, "job-00000002.cjob.tmp")
	if err := os.WriteFile(stray, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: exactly the committed job, the stray tmp cleared, and the
	// next submit reuses the never-committed ID without colliding.
	q2 := openTestQueue(t, dir, clock)
	st := q2.Status()
	if len(st) != 1 || st[0].ID != 1 || st[0].Name != "committed" {
		t.Fatalf("reopened queue %+v, want only the committed job", st)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray tmp survived reopen: %v", err)
	}
	id, err := q2.Submit(testSpec("retry", 2))
	if err != nil || id != 2 {
		t.Fatalf("resubmit after crash: id %d err %v, want 2", id, err)
	}
}

// TestQueueCrashDuringComplete pins the disk-first completion order: if the
// dispatcher dies mid-completion-write, the job stays pending (claimable,
// re-runnable) and the retried completion commits exactly once.
func TestQueueCrashDuringComplete(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	q := openTestQueue(t, dir, clock)
	if _, err := q.Submit(testSpec("flaky-finish", 1)); err != nil {
		t.Fatal(err)
	}
	if r, err := q.Claim(1, 1); err != nil || r.JobID != 1 {
		t.Fatalf("claim: %+v %v", r, err)
	}

	queueFailAfterTmpWrite = func(path string) error {
		if strings.HasSuffix(path, "job-00000001.cjob") {
			return errCrash
		}
		return nil
	}
	if _, err := q.Complete(1, 1, RunResult{Records: 5}); !errors.Is(err, errCrash) {
		queueFailAfterTmpWrite = nil
		t.Fatalf("complete under failpoint: %v, want injected crash", err)
	}
	queueFailAfterTmpWrite = nil

	// The failed write committed nothing: still pending on disk and in
	// memory, no result stored.
	if res := q.Results(); len(res) != 0 {
		t.Fatalf("aborted completion stored a result: %+v", res)
	}
	q2 := openTestQueue(t, dir, clock)
	if st := q2.Status(); st[0].State != StatePending {
		t.Fatalf("reopened state %v, want pending (completion never committed)", st[0].State)
	}

	// The retried completion (same worker, after recovery) commits once.
	if r, err := q2.Claim(1, 1); err != nil || r.JobID != 1 {
		t.Fatalf("reclaim: %+v %v", r, err)
	}
	if st, err := q2.Complete(1, 1, RunResult{Records: 5}); err != nil || st != Completed {
		t.Fatalf("retried complete: %v %v", st, err)
	}
	q3 := openTestQueue(t, dir, clock)
	if res := q3.Results(); len(res) != 1 || res[0].Records != 5 {
		t.Fatalf("final results %+v, want exactly one", res)
	}
}

// TestQueueCrashAfterRename pins the other half of the ordering: a crash
// after the rename but before the in-memory update loses nothing — the
// transition is already durable, and reopen sees it.
func TestQueueCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	q := openTestQueue(t, dir, clock)

	queueFailAfterRename = func(path string) error { return errCrash }
	if _, err := q.Submit(testSpec("durable", 1)); !errors.Is(err, errCrash) {
		queueFailAfterRename = nil
		t.Fatalf("submit under failpoint: %v, want injected crash", err)
	}
	queueFailAfterRename = nil

	// The write landed before the "crash": reopen finds the job even though
	// the submitting dispatcher never acknowledged it.
	q2 := openTestQueue(t, dir, clock)
	st := q2.Status()
	if len(st) != 1 || st[0].Name != "durable" || st[0].State != StatePending {
		t.Fatalf("reopened queue %+v, want the renamed job pending", st)
	}
}

// TestQueueCorruptFileRejected: a bit-flipped job file fails the CRC and
// surfaces as ErrCorrupt at open, never a panic or a silent drop.
func TestQueueCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	q := openTestQueue(t, dir, clock)
	if _, err := q.Submit(testSpec("soon-corrupt", 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "job-00000001.cjob")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenQueue(dir, QueueOptions{Now: clock.Now}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt file: %v, want ErrCorrupt", err)
	}
}
