package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"mira/internal/obs"
)

// Client is the thin control-plane client: submit, status, results. The
// worker data plane (claim/heartbeat/complete) lives on Worker, which owns
// the retry and dedup discipline.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a dispatcher base URL. httpClient may be nil.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		req.Header.Set(obs.TraceHeader, sc.HeaderValue())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelope))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("campaign: %s %s: status %d: %s",
			method, path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return b, nil
}

// Submit enqueues one spec, returning its job ID.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (uint64, error) {
	frame, err := EncodeJobSpec(spec)
	if err != nil {
		return 0, err
	}
	b, err := c.do(ctx, http.MethodPost, "/v1/campaign/submit", frame)
	if err != nil {
		return 0, err
	}
	var out struct {
		JobID uint64 `json:"job_id"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return 0, fmt.Errorf("campaign: submit response: %w", err)
	}
	return out.JobID, nil
}

// Status fetches every job's state.
func (c *Client) Status(ctx context.Context) ([]JobStatus, error) {
	b, err := c.do(ctx, http.MethodGet, "/v1/campaign/jobs", nil)
	if err != nil {
		return nil, err
	}
	var out []JobStatus
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("campaign: jobs response: %w", err)
	}
	return out, nil
}

// Results fetches the completed jobs' RunResults.
func (c *Client) Results(ctx context.Context) ([]RunResult, error) {
	b, err := c.do(ctx, http.MethodGet, "/v1/campaign/results", nil)
	if err != nil {
		return nil, err
	}
	var out []RunResult
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("campaign: results response: %w", err)
	}
	return out, nil
}
