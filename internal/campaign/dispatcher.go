package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mira/internal/obs"
)

// maxResultBody caps a completion body; a RunResult is a few hundred bytes.
const maxResultBody = 1 << 20

var metRequestDur = obs.NewHistogramVec("mira_campaign_request_duration_seconds",
	"campaign dispatcher request latency by endpoint", "endpoint", nil)

// Dispatcher serves the claim/heartbeat/complete protocol over a Queue. It
// mounts under /v1/campaign/ so it can share a mux (and a port) with the
// telemetrynet endpoints.
type Dispatcher struct {
	q   *Queue
	log *obs.Logger
}

// NewDispatcher wraps a queue. log may be nil.
func NewDispatcher(q *Queue, log *obs.Logger) *Dispatcher {
	return &Dispatcher{q: q, log: log}
}

// Queue exposes the underlying queue (status pages, tests).
func (d *Dispatcher) Queue() *Queue { return d.q }

// Mount registers the campaign endpoints on mux.
func (d *Dispatcher) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/campaign/submit", d.traced("submit", "campaign.submit", d.handleSubmit))
	mux.HandleFunc("/v1/campaign/claim", d.traced("claim", "campaign.claim", d.handleClaim))
	mux.HandleFunc("/v1/campaign/heartbeat", d.traced("heartbeat", "campaign.heartbeat", d.handleHeartbeat))
	mux.HandleFunc("/v1/campaign/complete", d.traced("complete", "campaign.complete", d.handleComplete))
	mux.HandleFunc("/v1/campaign/fail", d.traced("fail", "campaign.fail", d.handleFail))
	mux.HandleFunc("/v1/campaign/jobs", d.traced("jobs", "campaign.jobs", d.handleJobs))
	mux.HandleFunc("/v1/campaign/results", d.traced("results", "campaign.results", d.handleResults))
}

// Handler returns a standalone handler with every endpoint mounted.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	d.Mount(mux)
	return mux
}

// traced adopts the caller's wire trace context and wraps the handler in a
// server span, mirroring the telemetrynet endpoints so a worker's
// claim/complete RPCs and the dispatcher's handling land in one trace tree.
func (d *Dispatcher) traced(endpoint, spanName string, h http.HandlerFunc) http.HandlerFunc {
	hist := metRequestDur.With(endpoint)
	return func(w http.ResponseWriter, req *http.Request) {
		ctx := req.Context()
		if sc, ok := obs.ParseTraceHeader(req.Header.Get(obs.TraceHeader)); ok {
			ctx = obs.ContextWithRemoteSpan(ctx, sc)
		}
		ctx, span := obs.Span(ctx, spanName)
		start := time.Now()
		h(w, req.WithContext(ctx))
		trace := span.Context().Trace
		span.End()
		hist.ObserveExemplar(time.Since(start).Seconds(), trace.String())
	}
}

func (d *Dispatcher) infof(format string, args ...any) {
	if d.log != nil {
		d.log.Infof(format, args...)
	}
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// queryID parses a uint64 query parameter.
func queryID(req *http.Request, key string) (uint64, error) {
	var v uint64
	s := req.URL.Query().Get(key)
	if s == "" {
		return 0, fmt.Errorf("missing %s", key)
	}
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v == 0 {
		return 0, fmt.Errorf("bad %s %q", key, s)
	}
	return v, nil
}

// handleSubmit accepts one framed JobSpec and enqueues it durably.
func (d *Dispatcher) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxEnvelope+envHeaderLen+envTrailLen+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := DecodeJobSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := d.q.Submit(spec)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrBadSpec) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	d.infof("job %d submitted: %s (seed %d, %s..%s)", id, spec.Name, spec.Seed, spec.Start, spec.End)
	writeJSON(w, map[string]uint64{"job_id": id})
}

// handleClaim hands out a job under lease; idempotent per (worker, seq).
func (d *Dispatcher) handleClaim(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	worker, err := queryID(req, "worker")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := queryID(req, "seq")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := d.q.Claim(worker, seq)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	frame, err := EncodeClaimResponse(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if resp.JobID != 0 {
		d.infof("job %d claimed by worker %d (attempt %d)", resp.JobID, worker, resp.Attempt)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// handleHeartbeat renews a lease; 409 tells the worker the lease is gone.
func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	jobID, err := queryID(req, "job")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	worker, err := queryID(req, "worker")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := d.q.Heartbeat(jobID, worker); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleComplete stores a result; double completion is a no-op duplicate.
func (d *Dispatcher) handleComplete(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	jobID, err := queryID(req, "job")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	worker, err := queryID(req, "worker")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var res RunResult
	if err := json.NewDecoder(io.LimitReader(req.Body, maxResultBody)).Decode(&res); err != nil {
		http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
		return
	}
	status, err := d.q.Complete(jobID, worker, res)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNoJob) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	d.infof("job %d %s by worker %d", jobID, status, worker)
	writeJSON(w, map[string]CompleteStatus{"status": status})
}

// handleFail requeues (or parks) a job the worker could not run.
func (d *Dispatcher) handleFail(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	jobID, err := queryID(req, "job")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	worker, err := queryID(req, "worker")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cause, _ := io.ReadAll(io.LimitReader(req.Body, 4096))
	if err := d.q.Fail(jobID, worker, string(cause)); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNoJob) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	d.infof("job %d failed by worker %d: %s", jobID, worker, cause)
	writeJSON(w, map[string]string{"status": "requeued"})
}

// handleJobs lists every job's status.
func (d *Dispatcher) handleJobs(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, d.q.Status())
}

// handleResults lists the RunResults of completed jobs.
func (d *Dispatcher) handleResults(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, d.q.Results())
}
