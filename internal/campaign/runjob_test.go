package campaign

import (
	"context"
	"reflect"
	"testing"
)

// TestRunJobDeterministic runs the real simulator twice over a short window
// and pins that a spec fully determines its outcome — the property the
// whole sweep comparison rests on — and that the failure-injection axis
// actually moves the reliability numbers.
func TestRunJobDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation run")
	}
	spec := JobSpec{
		Version: SpecVersion, Name: "det", Seed: 42,
		Start: "2014-07-01", End: "2014-07-03",
	}
	a, err := RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec, different results:\n a %+v\n b %+v", a, b)
	}
	if a.Records == 0 || a.JobsCompleted == 0 {
		t.Fatalf("run produced no telemetry or jobs: %+v", a)
	}

	// Cranking the episode rate must not change the telemetry volume (the
	// fleet still reports) but is a different run.
	hot := spec
	hot.Name = "hot"
	hot.FailureScale = 8
	h, err := RunJob(context.Background(), hot)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(
		[]int{a.CMFailures, a.Incidents, a.NonCMFailures},
		[]int{h.CMFailures, h.Incidents, h.NonCMFailures},
	) && a.Records == h.Records {
		t.Fatalf("failure_scale=8 produced an identical run: %+v", h)
	}
}
