package campaign

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/obs"
	"mira/internal/telemetrynet/faultinject"
)

// startDispatcher serves a queue over httptest.
func startDispatcher(t *testing.T, q *Queue) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewDispatcher(q, nil).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// stubRun returns a deterministic result derived from the spec without
// simulating, optionally stalling until release closes.
func stubRun(release <-chan struct{}) func(context.Context, JobSpec) (RunResult, error) {
	return func(ctx context.Context, spec JobSpec) (RunResult, error) {
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return RunResult{}, ctx.Err()
			}
		}
		return RunResult{Records: int(spec.Seed) * 100, CMFailures: int(spec.Seed)}, nil
	}
}

func TestDispatcherHTTPLifecycle(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := startDispatcher(t, q)
	cl := NewClient(ts.URL, nil)
	ctx := context.Background()

	for i := int64(1); i <= 2; i++ {
		id, err := cl.Submit(ctx, testSpec(fmt.Sprintf("s%d", i), i))
		if err != nil || id != uint64(i) {
			t.Fatalf("submit %d: id %d err %v", i, id, err)
		}
	}
	// A malformed submit is rejected, not enqueued.
	if _, err := cl.Submit(ctx, JobSpec{Name: "nope"}); err == nil {
		t.Fatal("invalid spec accepted over HTTP")
	}

	w := NewWorker(ts.URL, WorkerOptions{Run: stubRun(nil), Poll: 5 * time.Millisecond})
	if err := w.RunLoop(); err != nil {
		t.Fatal(err)
	}
	if w.Completed != 2 || w.Duplicates != 0 {
		t.Fatalf("worker completed %d (dups %d), want 2 (0)", w.Completed, w.Duplicates)
	}
	res, err := cl.Results(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Records != 100 || res[1].Records != 200 {
		t.Fatalf("results %+v, want the two stub outcomes", res)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st {
		if s.State != StateDone {
			t.Fatalf("job %d state %s, want done", s.ID, s.State)
		}
	}
}

// TestCampaignExactlyOnceUnderLossyTransport reuses the extracted
// fault-injection transport against the claim/complete protocol: requests
// dropped before application, responses lost after application, and whole
// requests delivered twice. Workers retry blindly; every job must still
// complete exactly once.
func TestCampaignExactlyOnceUnderLossyTransport(t *testing.T) {
	const jobs = 9
	q, err := OpenQueue(t.TempDir(), QueueOptions{Lease: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &faultinject.Transport{
		Inner: NewDispatcher(q, nil).Handler(),
		Rule: func(method, path string, attempt int64) faultinject.Action {
			switch {
			case attempt%3 == 0:
				return faultinject.Drop
			case attempt%7 == 0:
				return faultinject.Blackhole
			case attempt%5 == 0:
				return faultinject.Duplicate
			}
			return faultinject.Pass
		},
	}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	for i := int64(1); i <= jobs; i++ {
		if _, err := q.Submit(testSpec(fmt.Sprintf("lossy%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	workers := make([]*Worker, 2)
	errs := make([]error, len(workers))
	for i := range workers {
		workers[i] = NewWorker(ts.URL, WorkerOptions{
			ID:   uint64(i + 1),
			Run:  stubRun(nil),
			Poll: 5 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = workers[i].RunLoop()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	if flaky.Injected(faultinject.Drop) == 0 || flaky.Injected(faultinject.Blackhole) == 0 ||
		flaky.Injected(faultinject.Duplicate) == 0 {
		t.Fatalf("fault schedule never fired: drop=%d blackhole=%d duplicate=%d",
			flaky.Injected(faultinject.Drop), flaky.Injected(faultinject.Blackhole),
			flaky.Injected(faultinject.Duplicate))
	}
	res := q.Results()
	if len(res) != jobs {
		t.Fatalf("results store holds %d, want %d", len(res), jobs)
	}
	seen := map[uint64]bool{}
	for _, r := range res {
		if seen[r.JobID] {
			t.Fatalf("job %d completed twice", r.JobID)
		}
		seen[r.JobID] = true
		if r.Records != int(r.Seed)*100 {
			t.Fatalf("job %d records %d, want %d", r.JobID, r.Records, r.Seed*100)
		}
	}
	// An injected Duplicate can make the true first completion read back as
	// a duplicate on the worker side, so the worker-visible invariant is
	// coverage, not an exact count; the store above is the exact-once pin.
	if done := workers[0].Completed + workers[0].Duplicates +
		workers[1].Completed + workers[1].Duplicates; done < jobs {
		t.Fatalf("workers report %d completion outcomes, want >= %d", done, jobs)
	}
}

// TestSweepSurvivesKilledWorkerAndDispatcherRestart is the acceptance pin:
// a 3-job sweep across 2 workers, with one worker killed mid-job and the
// dispatcher restarted once mid-sweep, still completes every job exactly
// once and the results store holds all three RunResults.
func TestSweepSurvivesKilledWorkerAndDispatcherRestart(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{Lease: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := startDispatcher(t, q)
	cl := NewClient(ts.URL, nil)
	for i := int64(1); i <= 3; i++ {
		if _, err := cl.Submit(context.Background(), testSpec(fmt.Sprintf("sweep%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}

	// Worker A claims job 1 and stalls inside the run; killing its context
	// is the in-process stand-in for kill -9.
	stall := make(chan struct{})
	actx, kill := context.WithCancel(context.Background())
	a := NewWorker(ts.URL, WorkerOptions{ID: 11, Run: stubRun(stall), Context: actx, Poll: 5 * time.Millisecond})
	aDone := make(chan error, 1)
	go func() { aDone <- a.RunLoop() }()
	waitFor(t, time.Second, func() bool {
		for _, s := range q.Status() {
			if s.State == StateRunning && s.Worker == 11 {
				return true
			}
		}
		return false
	})
	kill()
	<-aDone

	// Dispatcher "crashes" and restarts over the same directory: the killed
	// worker's in-flight job demotes back to pending.
	ts.Close()
	q2, err := OpenQueue(dir, QueueOptions{Lease: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range q2.Status() {
		if s.State != StatePending {
			t.Fatalf("job %d state %s after restart, want pending", s.ID, s.State)
		}
	}
	ts2 := startDispatcher(t, q2)

	// Two fresh workers drain the sweep.
	var wg sync.WaitGroup
	bc := make([]*Worker, 2)
	errs := make([]error, 2)
	for i := range bc {
		bc[i] = NewWorker(ts2.URL, WorkerOptions{ID: uint64(20 + i), Run: stubRun(nil), Poll: 5 * time.Millisecond})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = bc[i].RunLoop()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	res, err := NewClient(ts2.URL, nil).Results(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results store holds %d RunResults, want all 3", len(res))
	}
	seen := map[uint64]bool{}
	for _, r := range res {
		if seen[r.JobID] {
			t.Fatalf("job %d completed twice", r.JobID)
		}
		seen[r.JobID] = true
	}
	if done := bc[0].Completed + bc[1].Completed; done != 3 {
		t.Fatalf("replacement workers completed %d jobs, want 3", done)
	}
	// And the diff table renders one row per job plus header/baseline.
	table := FormatDiffTable(res)
	for _, want := range []string{"sweep1", "sweep2", "sweep3", "baseline: job 1"} {
		if !strings.Contains(table, want) {
			t.Fatalf("diff table missing %q:\n%s", want, table)
		}
	}
}

// TestClaimCompleteTracePropagation pins the wire trace: a worker claim
// carried out under a client span must parent the dispatcher's handler
// span, and the completion likewise — one coherent trace across the RPC.
func TestClaimCompleteTracePropagation(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := startDispatcher(t, q)
	if _, err := q.Submit(testSpec("traced", 1)); err != nil {
		t.Fatal(err)
	}

	ctx, root := obs.Span(context.Background(), "test.campaign_e2e")
	w := NewWorker(ts.URL, WorkerOptions{ID: 3, Run: stubRun(nil), Context: ctx, Poll: 5 * time.Millisecond})
	if err := w.RunLoop(); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := waitTrace(t, root.Context().Trace,
		"test.campaign_e2e", "campaign.worker.claim", "campaign.claim",
		"campaign.worker.complete", "campaign.complete")
	clientClaim := spanByName(t, spans, "campaign.worker.claim")
	handlerClaim := spanByName(t, spans, "campaign.claim")
	if handlerClaim.Parent != clientClaim.ID {
		t.Fatalf("campaign.claim parent %s, want worker span %s: trace did not cross the wire",
			handlerClaim.Parent, clientClaim.ID)
	}
	clientDone := spanByName(t, spans, "campaign.worker.complete")
	handlerDone := spanByName(t, spans, "campaign.complete")
	if handlerDone.Parent != clientDone.ID {
		t.Fatalf("campaign.complete parent %s, want worker span %s", handlerDone.Parent, clientDone.ID)
	}
}

// waitTrace polls the default registry's ring until the trace's merged
// fragments contain every wanted span name (the last fragment can land just
// after the client-side call returns).
func waitTrace(t *testing.T, id obs.TraceID, names ...string) []obs.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var spans []obs.SpanRecord
		for _, frag := range obs.TraceByID(id) {
			spans = append(spans, frag.Spans...)
		}
		have := make(map[string]bool, len(spans))
		for _, sp := range spans {
			have[sp.Name] = true
		}
		missing := false
		for _, n := range names {
			if !have[n] {
				missing = true
			}
		}
		if !missing {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed: have %v, want %v", id, have, names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func spanByName(t *testing.T, spans []obs.SpanRecord, name string) obs.SpanRecord {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("span %q not in trace", name)
	return obs.SpanRecord{}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
